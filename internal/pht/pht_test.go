package pht

import (
	"testing"
	"testing/quick"

	"branchscope/internal/fsm"
	"branchscope/internal/rng"
)

func TestNewInitializesToFreshState(t *testing.T) {
	spec := fsm.Textbook2Bit()
	tab := New(spec, 16)
	for i := 0; i < tab.Size(); i++ {
		if tab.State(i) != spec.Init {
			t.Fatalf("entry %d = %d, want init %d", i, tab.State(i), spec.Init)
		}
	}
}

func TestUpdateAndPredict(t *testing.T) {
	tab := New(fsm.Textbook2Bit(), 8)
	// Fresh entry (WN) predicts not-taken.
	if tab.Predict(3) {
		t.Error("fresh entry predicts taken")
	}
	tab.Update(3, true)
	if !tab.Predict(3) {
		t.Error("after one taken, WN->WT should predict taken")
	}
	// Other entries unaffected.
	if tab.Predict(2) || tab.Predict(4) {
		t.Error("neighbour entries were modified")
	}
}

func TestResetRestoresInit(t *testing.T) {
	tab := New(fsm.Textbook2Bit(), 4)
	tab.Update(0, true)
	tab.Update(0, true)
	tab.Reset()
	if tab.State(0) != tab.Spec().Init {
		t.Errorf("state after Reset = %d", tab.State(0))
	}
}

func TestSnapshotRestore(t *testing.T) {
	tab := New(fsm.SkylakeAsym(), 8)
	tab.Update(1, true)
	tab.Update(1, true)
	snap := tab.Snapshot()
	tab.Update(1, false)
	tab.Update(5, true)
	tab.Restore(snap)
	if tab.State(1) != snap[1] || tab.State(5) != snap[5] {
		t.Error("Restore did not reinstate snapshot")
	}
	// Snapshot must be a copy, not an alias.
	snap[0] = 99
	if tab.State(0) == 99 {
		t.Error("Snapshot aliases table storage")
	}
}

func TestRestorePanicsOnSizeMismatch(t *testing.T) {
	tab := New(fsm.Textbook2Bit(), 8)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	tab.Restore(make([]uint8, 4))
}

func TestSetStatePanicsOnInvalid(t *testing.T) {
	tab := New(fsm.Textbook2Bit(), 8)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	tab.SetState(0, 200)
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(fsm.Textbook2Bit(), 0)
}

func TestLabel(t *testing.T) {
	tab := New(fsm.Textbook2Bit(), 2)
	tab.SetState(0, tab.Spec().Strong(true))
	if tab.Label(0) != fsm.ST {
		t.Errorf("Label = %v, want ST", tab.Label(0))
	}
}

func TestStochasticUpdates(t *testing.T) {
	tab := New(fsm.Textbook2Bit(), 1)
	tab.SetStochastic(0, rng.New(1))
	st := tab.State(0)
	for i := 0; i < 100; i++ {
		tab.Update(0, true)
	}
	if tab.State(0) != st {
		t.Error("p=0 stochastic table still updated")
	}
	tab.SetStochastic(0.5, rng.New(2))
	moved := false
	for i := 0; i < 100 && !moved; i++ {
		tab.Update(0, true)
		moved = tab.State(0) != st
	}
	if !moved {
		t.Error("p=0.5 stochastic table never updated in 100 tries")
	}
	tab.SetStochastic(1, nil)
	tab.SetState(0, 0)
	tab.Update(0, true)
	if tab.State(0) != 1 {
		t.Error("p=1 restore did not make updates deterministic")
	}
}

func TestBimodalIndexByteGranularity(t *testing.T) {
	// §6.3: adjacent addresses map to different entries; addresses
	// exactly size apart collide.
	size := 16384
	if BimodalIndex(0x300000, size) == BimodalIndex(0x300001, size) {
		t.Error("adjacent addresses collide")
	}
	if BimodalIndex(0x300000, size) != BimodalIndex(0x300000+uint64(size), size) {
		t.Error("addresses size apart do not collide")
	}
}

func TestGshareIndexDependsOnHistory(t *testing.T) {
	size := 4096
	addr := uint64(0x400321)
	if GshareIndex(addr, 0, size) == GshareIndex(addr, 0x5a5, size) {
		t.Error("gshare index ignores history")
	}
	if GshareIndex(addr, 0, size) != BimodalIndex(addr, size) {
		t.Error("gshare with empty history should reduce to bimodal")
	}
}

func TestKeyedIndexBreaksCollisions(t *testing.T) {
	size := 1024
	a := uint64(0x1000)
	b := a + uint64(size) // collides under bimodal
	if BimodalIndex(a, size) != BimodalIndex(b, size) {
		t.Fatal("test precondition broken")
	}
	// Under a keyed index the pair should (for almost all keys) no
	// longer collide; check a handful of keys and require that most
	// separate the pair.
	separated := 0
	for key := uint64(1); key <= 32; key++ {
		if KeyedIndex(a, key, size) != KeyedIndex(b, key, size) {
			separated++
		}
	}
	if separated < 28 {
		t.Errorf("keyed index separated only %d/32 keys", separated)
	}
	// And different domains (keys) disagree about where a given branch
	// lives, which is what prevents cross-domain priming.
	if KeyedIndex(a, 1, size) == KeyedIndex(a, 2, size) &&
		KeyedIndex(b, 1, size) == KeyedIndex(b, 2, size) {
		t.Error("keyed index is key-independent")
	}
}

// Property: all index functions stay in range for any input.
func TestQuickIndexInRange(t *testing.T) {
	f := func(addr, ghr, key uint64) bool {
		for _, size := range []int{1, 3, 1024, 16384} {
			if i := BimodalIndex(addr, size); i < 0 || i >= size {
				return false
			}
			if i := GshareIndex(addr, ghr, size); i < 0 || i >= size {
				return false
			}
			if i := KeyedIndex(addr, key, size); i < 0 || i >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: snapshot/restore is lossless for any update sequence.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(updates []uint16, dirs []bool) bool {
		tab := New(fsm.SkylakeAsym(), 64)
		n := len(updates)
		if len(dirs) < n {
			n = len(dirs)
		}
		for i := 0; i < n; i++ {
			tab.Update(int(updates[i])%64, dirs[i])
		}
		snap := tab.Snapshot()
		for i := 0; i < n; i++ {
			tab.Update(int(updates[i])%64, !dirs[i])
		}
		tab.Restore(snap)
		for i := 0; i < 64; i++ {
			if tab.State(i) != snap[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
