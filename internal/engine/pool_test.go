package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestMapMidRunCancellation: canceling the context mid-Map lets the
// in-flight items finish, marks every queued-but-unstarted item with
// the cancellation error without running it, and — through RunSuite —
// settles those tasks with the "canceled" outcome. A goroutine-count
// check proves the pool's workers all exit: a canceled suite must not
// strand blocked goroutines behind the semaphore.
func TestMapMidRunCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()

	pool := NewPool(3) // caller + 2 worker slots
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const n = 8
	const inflight = 3
	started := make(chan struct{}, inflight)
	release := make(chan struct{})
	go func() {
		// Wait for every worker slot (and the caller) to be occupied,
		// cancel mid-Map, then unblock the running items.
		for i := 0; i < inflight; i++ {
			<-started
		}
		cancel()
		close(release)
	}()

	tasks := make([]Task, n)
	var ran [n]bool
	for i := range tasks {
		i := i
		tasks[i] = Task{
			ID:       fmt.Sprintf("cancel-%d", i),
			Artifact: "test",
			Run: func(context.Context, Config) (Result, error) {
				ran[i] = true
				started <- struct{}{}
				<-release
				return textResult("done"), nil
			},
		}
	}

	r := &Runner{Pool: pool}
	reports := r.RunSuite(ctx, tasks, Config{Seed: 7})
	if len(reports) != n {
		t.Fatalf("got %d reports, want %d", len(reports), n)
	}
	// The items in flight at cancellation are abandoned and report
	// canceled; everything still queued must settle canceled WITHOUT
	// ever running. Either way every report keeps its task identity and
	// derived seed — a canceled suite still renders deterministically.
	startedCount := 0
	for i, rep := range reports {
		if ran[i] {
			startedCount++
		}
		if got := rep.Outcome(); got != "canceled" {
			t.Errorf("task %d: outcome %q, want canceled (err %v)", i, got, rep.Err)
		}
		if !errors.Is(rep.Err, context.Canceled) {
			t.Errorf("task %d: canceled report should wrap context.Canceled, got %v", i, rep.Err)
		}
		if rep.Seed != DeriveSeed(7, rep.Task.ID) {
			t.Errorf("task %d: canceled report lost its derived seed", i)
		}
	}
	if startedCount != inflight {
		t.Errorf("%d tasks started, want exactly the %d in flight at cancellation — queued tasks must not run", startedCount, inflight)
	}

	// No goroutine may outlive the suite: poll briefly (the last worker
	// needs a moment between its final send and exiting).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after canceled Map: %d running, baseline %d\n%s",
				g, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
