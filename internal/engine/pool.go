package engine

import (
	"context"
	"sync"
)

// Pool bounds the number of goroutines the engine runs concurrently.
// The zero/nil Pool is valid and means "no extra workers": Map runs
// sequentially in the calling goroutine.
//
// The pool uses caller-runs overflow: Map never blocks waiting for a
// worker slot — when none is free the calling goroutine executes the
// item itself. The caller therefore always counts as one worker, and a
// pool created with NewPool(n) yields at most n concurrently running
// items. Because acquisition never blocks, nested Map calls over the
// same pool (an experiment fanning out per-CPU-model sub-runs while the
// suite runner fans out experiments) cannot deadlock.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool allowing up to workers concurrently running
// items (including the calling goroutine). workers <= 1 returns nil:
// fully sequential execution.
func NewPool(workers int) *Pool {
	if workers <= 1 {
		return nil
	}
	return &Pool{sem: make(chan struct{}, workers-1)}
}

// Workers reports the concurrency bound (1 for the nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return cap(p.sem) + 1
}

// poolKey carries the process's pool through contexts so nested code
// (experiments decomposing into per-model units) inherits the same
// concurrency bound the CLI configured, without global state.
type poolKey struct{}

// WithPool returns a context carrying p. A nil p is valid (sequential).
func WithPool(ctx context.Context, p *Pool) context.Context {
	return context.WithValue(ctx, poolKey{}, p)
}

// PoolFrom extracts the pool installed by WithPool; nil (sequential)
// when the context carries none.
func PoolFrom(ctx context.Context) *Pool {
	p, _ := ctx.Value(poolKey{}).(*Pool)
	return p
}

// Map runs fn(0..n-1) with the parallelism bound of the context's pool
// and returns the results in index order. Determinism contract: the
// result slice depends only on fn, never on scheduling. If any fn
// returns an error, Map returns the error of the lowest index alongside
// the partial results. A canceled context stops new items from starting
// (running items finish); canceled items report ctx.Err().
func Map[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	p := PoolFrom(ctx)
	if p == nil {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			results[i], errs[i] = fn(i)
		}
		return results, firstError(errs)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		i := i
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.sem }()
				results[i], errs[i] = fn(i)
			}()
		default:
			// No worker slot free: the caller is the worker.
			results[i], errs[i] = fn(i)
		}
	}
	wg.Wait()
	return results, firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
