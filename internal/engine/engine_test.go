package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDeriveSeedProperties(t *testing.T) {
	// Distinct label paths must yield distinct streams.
	seen := map[uint64][]string{}
	cases := [][]string{
		{"fig2"}, {"table1"}, {"table1", "Skylake"}, {"table1", "Haswell"},
		{"table2", "Skylake", "isolated"}, {"table2", "Skylake", "with noise"},
		{"a", "bc"}, {"ab", "c"}, // NUL separation keeps these apart
	}
	for _, labels := range cases {
		s := DeriveSeed(1, labels...)
		if prev, dup := seen[s]; dup {
			t.Errorf("DeriveSeed(1, %v) == DeriveSeed(1, %v)", labels, prev)
		}
		seen[s] = labels
	}
	// Deterministic.
	if DeriveSeed(7, "x", "y") != DeriveSeed(7, "x", "y") {
		t.Error("DeriveSeed not deterministic")
	}
	// Base seed must matter.
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") {
		t.Error("base seed ignored")
	}
}

func TestRowJSONPreservesKeyOrder(t *testing.T) {
	row := Row{F("zeta", 1), F("alpha", "two"), F("mid", 3.5), F("flag", true)}
	b, err := json.Marshal(row)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"zeta":1,"alpha":"two","mid":3.5,"flag":true}`
	if string(b) != want {
		t.Errorf("Row JSON = %s, want %s", b, want)
	}
	// Round-trips as a JSON object.
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("row is not a JSON object: %v", err)
	}
}

func TestMapSequentialWithoutPool(t *testing.T) {
	var order []int
	got, err := Map(context.Background(), 5, func(i int) (int, error) {
		order = append(order, i) // safe: nil pool runs in the caller
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Errorf("got[%d] = %d", i, v)
		}
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential path ran out of order: %v", order)
		}
	}
}

func TestMapParallelPreservesIndexOrder(t *testing.T) {
	ctx := WithPool(context.Background(), NewPool(4))
	got, err := Map(ctx, 64, func(i int) (int, error) {
		return i * 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*3 {
			t.Errorf("got[%d] = %d, want %d", i, v, i*3)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	ctx := WithPool(context.Background(), NewPool(workers))
	var cur, max atomic.Int64
	var mu sync.Mutex
	_, err := Map(ctx, 40, func(i int) (int, error) {
		n := cur.Add(1)
		mu.Lock()
		if n > max.Load() {
			max.Store(n)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Errorf("observed %d concurrent items, pool bound is %d", m, workers)
	}
}

func TestMapNestedDoesNotDeadlock(t *testing.T) {
	// Nested Map over the same pool: caller-runs overflow must keep this
	// from deadlocking even when every slot is held by an outer item.
	ctx := WithPool(context.Background(), NewPool(2))
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Map(ctx, 8, func(i int) ([]int, error) {
			return Map(ctx, 8, func(j int) (int, error) {
				return i*8 + j, nil
			})
		})
		if err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("nested Map deadlocked")
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errBoom := errors.New("boom")
	_, err := Map(context.Background(), 5, func(i int) (int, error) {
		if i == 1 || i == 3 {
			return 0, fmt.Errorf("item %d: %w", i, errBoom)
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "item 1") {
		t.Errorf("err = %v, want the lowest-index failure", err)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	_, err := Map(ctx, 10, func(i int) (int, error) {
		ran++
		if i == 2 {
			cancel()
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("canceled Map returned nil error")
	}
	if ran > 3 {
		t.Errorf("%d items ran after cancellation", ran)
	}
}

func TestPoolWorkers(t *testing.T) {
	if NewPool(1) != nil || NewPool(0) != nil {
		t.Error("NewPool(<=1) must be the nil (sequential) pool")
	}
	if w := (*Pool)(nil).Workers(); w != 1 {
		t.Errorf("nil pool workers = %d", w)
	}
	if w := NewPool(8).Workers(); w != 8 {
		t.Errorf("workers = %d, want 8", w)
	}
	if p := PoolFrom(context.Background()); p != nil {
		t.Error("PoolFrom of a bare context must be nil")
	}
}

// textResult is a trivial Result for runner tests.
type textResult string

func (r textResult) String() string { return string(r) + "\n" }
func (r textResult) Rows() []Row    { return []Row{{F("value", string(r))}} }

func okTask(id string) Task {
	return Task{
		ID: id, Artifact: "T", Description: "test task",
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			return textResult(fmt.Sprintf("%s seed=%d quick=%v", id, cfg.Seed, cfg.Quick)), nil
		},
	}
}

func TestRunnerDerivesTaskSeed(t *testing.T) {
	r := &Runner{}
	rep := r.RunTask(context.Background(), okTask("alpha"), Config{Seed: 9})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Seed != DeriveSeed(9, "alpha") {
		t.Errorf("report seed %d, want DeriveSeed(9, alpha)", rep.Seed)
	}
	if !strings.Contains(rep.Result.String(), fmt.Sprint(rep.Seed)) {
		t.Error("task did not receive the derived seed")
	}
}

func TestRunnerPanicIsolation(t *testing.T) {
	tasks := []Task{
		okTask("before"),
		{
			ID: "bad", Artifact: "T", Description: "panics",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				panic("deliberate test panic")
			},
		},
		okTask("after"),
	}
	r := &Runner{}
	reports := r.RunSuite(context.Background(), tasks, Config{Seed: 1})
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[0].Err != nil || reports[2].Err != nil {
		t.Error("healthy tasks affected by a panicking sibling")
	}
	bad := reports[1]
	if bad.Err == nil || !bad.Panicked {
		t.Fatalf("panic not reported: %+v", bad)
	}
	if !strings.Contains(bad.Err.Error(), "deliberate test panic") {
		t.Errorf("panic message lost: %v", bad.Err)
	}
	if bad.Result != nil {
		t.Error("failed task carries a result")
	}
	if Failed(reports) != 1 {
		t.Errorf("Failed = %d, want 1", Failed(reports))
	}
}

func TestRunnerTimeoutAbandonsStuckTask(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	stuck := Task{
		ID: "stuck", Artifact: "T", Description: "ignores ctx",
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			<-block // never observes ctx
			return textResult("late"), nil
		},
	}
	r := &Runner{Timeout: 20 * time.Millisecond}
	rep := r.RunTask(context.Background(), stuck, Config{})
	if rep.Err == nil || !errors.Is(rep.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", rep.Err)
	}
}

func TestRunSuiteCanceledTasksReportedFailed(t *testing.T) {
	// Every task must yield a real report even when the suite context is
	// canceled before (or while) it runs: unstarted tasks carry their
	// identity and a cancellation error, never a zero-value slot.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tasks := []Task{okTask("a"), okTask("b"), okTask("c")}
	r := &Runner{}
	reports := r.RunSuite(ctx, tasks, Config{Seed: 4})
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	for i, rep := range reports {
		if rep.Task.ID != tasks[i].ID {
			t.Errorf("report %d lost its task identity: %+v", i, rep)
		}
		if rep.Err == nil || !errors.Is(rep.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", rep.Task.ID, rep.Err)
		}
		if rep.Seed != DeriveSeed(4, tasks[i].ID) {
			t.Errorf("%s: seed not derived", rep.Task.ID)
		}
	}
	if Failed(reports) != 3 {
		t.Errorf("Failed = %d, want 3", Failed(reports))
	}
	var buf bytes.Buffer
	FormatText(&buf, reports)
	if strings.Contains(buf.String(), "===  ()") || strings.Contains(buf.String(), "<nil>") {
		t.Errorf("canceled tasks render as empty slots:\n%s", buf.String())
	}
}

func TestRunnerOnDoneObservesEveryReport(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]bool{}
	r := &Runner{
		Pool: NewPool(4),
		OnDone: func(rep Report) {
			mu.Lock()
			seen[rep.Task.ID] = true
			mu.Unlock()
		},
	}
	tasks := []Task{okTask("a"), okTask("b"), okTask("c")}
	r.RunSuite(context.Background(), tasks, Config{Seed: 2})
	for _, id := range []string{"a", "b", "c"} {
		if !seen[id] {
			t.Errorf("OnDone missed %s", id)
		}
	}
}

func TestSuiteOutputIdenticalAcrossParallelism(t *testing.T) {
	tasks := []Task{okTask("a"), okTask("b"), okTask("c"), okTask("d")}
	render := func(workers int) string {
		r := &Runner{Pool: NewPool(workers)}
		var buf bytes.Buffer
		FormatText(&buf, r.RunSuite(context.Background(), tasks, Config{Seed: 5}))
		return buf.String()
	}
	seq := render(1)
	for _, w := range []int{2, 8} {
		if par := render(w); par != seq {
			t.Errorf("output at %d workers differs from sequential:\n%s\nvs\n%s", w, par, seq)
		}
	}
	if !strings.Contains(seq, "=== a (T): test task ===") {
		t.Errorf("unexpected FormatText layout:\n%s", seq)
	}
}

func TestWriteJSONShape(t *testing.T) {
	r := &Runner{}
	reports := r.RunSuite(context.Background(), []Task{okTask("a"), {
		ID: "fail", Artifact: "T", Description: "fails",
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			return nil, errors.New("no data")
		},
	}}, Config{Seed: 3, Quick: true})
	for i := range reports {
		reports[i].Wall = 0 // the one nondeterministic field
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, ExportMeta{BaseSeed: 3, Quick: true}, reports); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Schema      string `json:"schema"`
		BaseSeed    uint64 `json:"base_seed"`
		Quick       bool   `json:"quick"`
		Experiments []struct {
			ID    string           `json:"id"`
			Seed  uint64           `json:"seed"`
			Error string           `json:"error"`
			Rows  []map[string]any `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != "branchscope.experiments/v1" || out.BaseSeed != 3 || !out.Quick {
		t.Errorf("bad export meta: %+v", out)
	}
	if len(out.Experiments) != 2 {
		t.Fatalf("experiments = %d", len(out.Experiments))
	}
	if out.Experiments[0].Error != "" || len(out.Experiments[0].Rows) != 1 {
		t.Errorf("ok task exported wrong: %+v", out.Experiments[0])
	}
	if out.Experiments[1].Error != "no data" || len(out.Experiments[1].Rows) != 0 {
		t.Errorf("failed task exported wrong: %+v", out.Experiments[1])
	}
}

func TestRunnerOnStartObservesDerivedSeed(t *testing.T) {
	var mu sync.Mutex
	started := map[string]uint64{}
	r := &Runner{
		Pool: NewPool(4),
		OnStart: func(task Task, seed uint64) {
			mu.Lock()
			started[task.ID] = seed
			mu.Unlock()
		},
	}
	tasks := []Task{okTask("a"), okTask("b"), okTask("c")}
	reports := r.RunSuite(context.Background(), tasks, Config{Seed: 7})
	for _, rep := range reports {
		seed, ok := started[rep.Task.ID]
		if !ok {
			t.Errorf("OnStart missed %s", rep.Task.ID)
			continue
		}
		if seed != rep.Seed || seed != DeriveSeed(7, rep.Task.ID) {
			t.Errorf("%s: OnStart seed = %d, report seed = %d", rep.Task.ID, seed, rep.Seed)
		}
	}
}

func TestRunSuiteCanceledTasksStillReachOnDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var mu sync.Mutex
	outcomes := map[string]string{}
	r := &Runner{OnDone: func(rep Report) {
		mu.Lock()
		outcomes[rep.Task.ID] = rep.Outcome()
		mu.Unlock()
	}}
	r.RunSuite(ctx, []Task{okTask("a"), okTask("b")}, Config{Seed: 1})
	for _, id := range []string{"a", "b"} {
		if outcomes[id] != "canceled" {
			t.Errorf("%s outcome = %q, want canceled (skipped tasks must reach OnDone)", id, outcomes[id])
		}
	}
}

func TestReportOutcome(t *testing.T) {
	cases := []struct {
		rep  Report
		want string
	}{
		{Report{}, "ok"},
		{Report{Err: errors.New("boom")}, "error"},
		{Report{Err: fmt.Errorf("task: %w", context.Canceled)}, "canceled"},
		{Report{Err: fmt.Errorf("task: %w", context.DeadlineExceeded)}, "timeout"},
		{Report{Err: errors.New("panicked"), Panicked: true}, "panic"},
		{Report{Attempts: 3}, "retried-ok"},
		{Report{Err: errors.New("boom"), Attempts: 3, Exhausted: true}, "exhausted"},
		// A panic or cancellation trumps the retry bookkeeping.
		{Report{Err: errors.New("panicked"), Panicked: true, Attempts: 2, Exhausted: true}, "panic"},
		{Report{Err: fmt.Errorf("task: %w", context.Canceled), Attempts: 2}, "canceled"},
	}
	for _, c := range cases {
		if got := c.rep.Outcome(); got != c.want {
			t.Errorf("Outcome(%+v) = %q, want %q", c.rep, got, c.want)
		}
	}
}
