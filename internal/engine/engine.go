// Package engine is the structured run engine behind the experiment
// suite: typed experiment results, deterministic seed derivation,
// context cancellation, and bounded parallel execution with preserved
// output ordering.
//
// The package deliberately knows nothing about individual experiments.
// An experiment is a Task — an ID plus a function from (Context, Config)
// to a Result — and the Runner executes tasks on a shared worker Pool
// with per-task timeouts and panic recovery, so one crashing or hanging
// experiment is reported as that task's error instead of killing the
// whole suite.
//
// Determinism contract: every task runs with a seed derived by hashing
// the base seed with the task ID (and, inside multi-model experiments,
// the CPU model name), never with a seed that depends on scheduling
// order. Combined with order-preserving result collection this makes
// the rendered suite output byte-identical regardless of the worker
// count.
package engine

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// Config carries the cross-experiment run parameters handed to every
// task: the scale selector and the seed all task-local randomness must
// derive from.
type Config struct {
	// Quick selects the scaled-down test configuration.
	Quick bool
	// Seed drives all randomness. The Runner replaces it with a
	// task-derived seed before invoking the task (see DeriveSeed).
	Seed uint64
}

// Result is the outcome of one experiment run: the paper-layout text
// (String) plus the same data as flat structured rows for machine
// consumption (Rows).
type Result interface {
	fmt.Stringer
	// Rows returns the result as JSON-exportable records. Key order
	// inside a Row is the export order and must be deterministic.
	Rows() []Row
}

// Field is one key/value pair of a structured row.
type Field struct {
	Key   string
	Value any
}

// F builds a Field; rows read as engine.Row{engine.F("model", m), ...}.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Row is one structured record of a Result, exported as a JSON object
// whose keys appear in Row order (unlike a Go map, which would
// marshal alphabetically and lose the experiment's column order).
type Row []Field

// rawRowKey marks a Row built by RawRow. The NUL byte cannot appear in
// a real column name, so ordinary rows can never collide with it.
const rawRowKey = "\x00raw"

// RawRow wraps pre-rendered JSON (one object, as produced by marshaling
// a Row) so it marshals byte-for-byte verbatim. The campaign journal
// uses it to replay checkpointed results without a decode/re-encode
// round trip that could reorder keys or reformat numbers.
func RawRow(data json.RawMessage) Row {
	return Row{Field{Key: rawRowKey, Value: data}}
}

// MarshalJSON implements json.Marshaler preserving field order.
func (r Row) MarshalJSON() ([]byte, error) {
	if len(r) == 1 && r[0].Key == rawRowKey {
		if raw, ok := r[0].Value.(json.RawMessage); ok {
			return raw, nil
		}
	}
	buf := []byte{'{'}
	for i, f := range r {
		if i > 0 {
			buf = append(buf, ',')
		}
		k, err := json.Marshal(f.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(f.Value)
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", f.Key, err)
		}
		buf = append(buf, k...)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	return append(buf, '}'), nil
}

// DeriveSeed maps a base seed and a label path to an independent seed
// stream (FNV-1a over the base seed and the labels). Experiments and
// their per-model sub-runs use it so each unit's randomness depends
// only on (base seed, experiment ID, model) — never on the order the
// worker pool happens to schedule units in.
func DeriveSeed(base uint64, labels ...string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], base)
	h.Write(b[:])
	for _, l := range labels {
		h.Write([]byte(l))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
