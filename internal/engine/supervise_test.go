package engine

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerOpensAndSkips pins the circuit-breaker lifecycle: after
// the threshold of consecutive permanent failures in one family, the
// family's remaining tasks are skipped with ErrBreakerOpen and the
// distinct "skipped-open-breaker" outcome, while other families keep
// running.
func TestBreakerOpensAndSkips(t *testing.T) {
	boom := errors.New("systematic failure")
	fail := func(ctx context.Context, cfg Config) (Result, error) { return nil, boom }
	ok := func(ctx context.Context, cfg Config) (Result, error) { return textResult("fine"), nil }
	tasks := []Task{
		{ID: "a1", Family: "bad", Run: fail},
		{ID: "a2", Family: "bad", Run: fail},
		{ID: "a3", Family: "bad", Run: fail}, // never runs: breaker opened at 2
		{ID: "b1", Family: "good", Run: ok},  // unaffected family
	}
	var ran atomic.Int32
	for i := range tasks {
		inner := tasks[i].Run
		tasks[i].Run = func(ctx context.Context, cfg Config) (Result, error) {
			ran.Add(1)
			return inner(ctx, cfg)
		}
	}
	r := &Runner{Breakers: NewBreakerSet(2)}
	reports := r.RunSuite(context.Background(), tasks, Config{Seed: 1})

	if got := ran.Load(); got != 3 {
		t.Errorf("ran %d task bodies, want 3 (a3 skipped)", got)
	}
	if o := reports[2].Outcome(); o != "skipped-open-breaker" {
		t.Errorf("a3 outcome = %q, want skipped-open-breaker", o)
	}
	if !errors.Is(reports[2].Err, ErrBreakerOpen) {
		t.Errorf("a3 err = %v, want ErrBreakerOpen", reports[2].Err)
	}
	if !reports[2].SkippedBreaker {
		t.Error("a3 report not marked SkippedBreaker")
	}
	if reports[3].Err != nil {
		t.Errorf("good-family task failed: %v", reports[3].Err)
	}

	bs := r.Breakers.Status()
	if len(bs) != 1 || bs[0].Family != "bad" || bs[0].State != "open" || bs[0].Skipped != 1 {
		t.Errorf("breaker status = %+v, want one open 'bad' family with 1 skip", bs)
	}
	if !r.Breakers.AnyOpen() {
		t.Error("AnyOpen false with an open breaker")
	}
}

// TestBreakerResetOnSuccess: a success between failures resets the
// consecutive count, so intermittent failures never open the breaker.
func TestBreakerResetOnSuccess(t *testing.T) {
	b := NewBreakerSet(2)
	b.Observe("f", "error")
	b.Observe("f", "ok") // resets
	b.Observe("f", "error")
	if !b.Admit("f") {
		t.Error("breaker opened despite an interleaved success")
	}
	// Timeouts and cancellations are neutral: not the family's fault.
	b.Observe("f", "timeout")
	b.Observe("f", "canceled")
	if !b.Admit("f") {
		t.Error("neutral outcomes moved the breaker")
	}
	b.Observe("f", "panic")
	if b.Admit("f") {
		t.Error("breaker still closed after threshold consecutive permanent failures")
	}
}

// TestNilBreakerSetIsNoop: a nil set admits everything — the default
// when -breaker is off.
func TestNilBreakerSetIsNoop(t *testing.T) {
	var b *BreakerSet
	if !b.Admit("x") || b.AnyOpen() || b.Status() != nil {
		t.Error("nil BreakerSet is not a transparent no-op")
	}
	b.Observe("x", "error") // must not panic
	if NewBreakerSet(0) != nil {
		t.Error("NewBreakerSet(0) should disable breaking (nil set)")
	}
}

// TestWatchdogMarksStuck: a task running past the soft deadline is
// flagged Stuck and reported through OnStuck, but still completes and
// succeeds — the distinction from Timeout.
func TestWatchdogMarksStuck(t *testing.T) {
	var stuckID atomic.Value
	release := make(chan struct{})
	r := &Runner{
		Watchdog: time.Millisecond,
		OnStuck: func(task Task, seed uint64) {
			stuckID.Store(task.ID)
			close(release)
		},
	}
	rep := r.RunTask(context.Background(), Task{ID: "slow", Run: func(ctx context.Context, cfg Config) (Result, error) {
		<-release // holds until the watchdog fires
		return textResult("finished anyway"), nil
	}}, Config{Seed: 1})

	if rep.Err != nil {
		t.Fatalf("stuck task should still succeed, got %v", rep.Err)
	}
	if !rep.Stuck {
		t.Error("report not marked Stuck")
	}
	if got, _ := stuckID.Load().(string); got != "slow" {
		t.Errorf("OnStuck saw %q, want slow", got)
	}
	if o := rep.Outcome(); o != "ok" {
		t.Errorf("outcome = %q; Stuck is advisory and must not change it", o)
	}

	// A fast task never trips the watchdog.
	rep = r.RunTask(context.Background(), Task{ID: "fast", Run: func(ctx context.Context, cfg Config) (Result, error) {
		return textResult("done"), nil
	}}, Config{Seed: 1})
	if rep.Stuck {
		t.Error("fast task marked Stuck")
	}
}

// TestRetryDoesNotResurrectCanceledTask pins the RetryPolicy × timeout
// interaction: when the parent context is canceled mid-task, the retry
// budget must not resurrect the task — one attempt, outcome canceled,
// no Exhausted.
func TestRetryDoesNotResurrectCanceledTask(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var attempts atomic.Int32
	r := &Runner{
		Retry: RetryPolicy{
			MaxAttempts: 5,
			// Everything is transient: only the ctx.Err() guard can stop
			// the loop.
			Classify: func(error) bool { return true },
		},
	}
	rep := r.RunTask(ctx, Task{ID: "dying", Run: func(ctx context.Context, cfg Config) (Result, error) {
		attempts.Add(1)
		cancel() // the parent run is being torn down
		return nil, ctx.Err()
	}}, Config{Seed: 1})

	if got := attempts.Load(); got != 1 {
		t.Errorf("task ran %d attempts after parent cancellation, want 1", got)
	}
	if rep.Attempts != 1 {
		t.Errorf("report.Attempts = %d, want 1", rep.Attempts)
	}
	if o := rep.Outcome(); o != "canceled" {
		t.Errorf("outcome = %q, want canceled", o)
	}
	if rep.Exhausted {
		t.Error("canceled task marked Exhausted: the budget was never consumed")
	}
}

// TestRetryTimeoutStillRetriesButCancellationWins: a per-attempt
// timeout is transient (the next attempt gets a fresh deadline), but
// parent cancellation is terminal even under the same policy.
func TestRetryTimeoutStillRetriesButCancellationWins(t *testing.T) {
	var attempts atomic.Int32
	r := &Runner{
		Timeout: 5 * time.Millisecond,
		Retry:   RetryPolicy{MaxAttempts: 3, Classify: func(error) bool { return true }},
	}
	rep := r.RunTask(context.Background(), Task{ID: "sleepy", Run: func(ctx context.Context, cfg Config) (Result, error) {
		attempts.Add(1)
		<-ctx.Done() // exceed the per-attempt deadline every time
		return nil, ctx.Err()
	}}, Config{Seed: 1})
	if got := attempts.Load(); got != 3 {
		t.Errorf("per-attempt timeouts consumed %d attempts, want the full budget of 3", got)
	}
	if !rep.Exhausted {
		t.Errorf("report not marked Exhausted: %+v", rep)
	}
	if o := rep.Outcome(); o != "exhausted" {
		t.Errorf("outcome = %q, want exhausted", o)
	}
	if !strings.Contains(rep.Err.Error(), "deadline") {
		t.Errorf("err = %v, want a deadline error", rep.Err)
	}
}
