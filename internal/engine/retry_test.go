package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// flakyTask fails with failErr until the given attempt number, then
// succeeds, recording the seed of every attempt.
func flakyTask(id string, succeedOn int, failErr error, seeds *[]uint64) Task {
	attempt := 0
	return Task{ID: id, Artifact: "T", Description: "flaky", Run: func(ctx context.Context, cfg Config) (Result, error) {
		attempt++
		*seeds = append(*seeds, cfg.Seed)
		if attempt < succeedOn {
			return nil, failErr
		}
		return textResult("recovered"), nil
	}}
}

func TestRetryTransientFailureRecovers(t *testing.T) {
	var seeds []uint64
	r := &Runner{Retry: RetryPolicy{MaxAttempts: 3, Backoff: time.Second}}
	rep := r.RunTask(context.Background(), flakyTask("flaky", 2, Transient(errors.New("glitch")), &seeds), Config{Seed: 9})
	if rep.Err != nil {
		t.Fatalf("retry did not recover: %v", rep.Err)
	}
	if rep.Attempts != 2 || rep.Outcome() != "retried-ok" {
		t.Errorf("Attempts=%d Outcome=%q, want 2/retried-ok", rep.Attempts, rep.Outcome())
	}
	taskSeed := DeriveSeed(9, "flaky")
	want := []uint64{taskSeed, DeriveSeed(taskSeed, "attempt", "2")}
	if len(seeds) != 2 || seeds[0] != want[0] || seeds[1] != want[1] {
		t.Errorf("attempt seeds = %v, want %v (identity then derived)", seeds, want)
	}
	if rep.Seed != want[1] {
		t.Errorf("report seed %d does not name the successful attempt's seed %d", rep.Seed, want[1])
	}
	// Backoff is simulated: recorded, not slept.
	if rep.Backoff != time.Second {
		t.Errorf("Backoff = %v, want 1s recorded", rep.Backoff)
	}
	if rep.Wall > 500*time.Millisecond {
		t.Errorf("wall %v: simulated backoff was actually slept", rep.Wall)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	var seeds []uint64
	r := &Runner{Retry: RetryPolicy{MaxAttempts: 3, Backoff: 10 * time.Millisecond}}
	rep := r.RunTask(context.Background(), flakyTask("doomed", 99, Transient(errors.New("glitch")), &seeds), Config{Seed: 9})
	if rep.Err == nil {
		t.Fatal("exhausted task reported success")
	}
	if rep.Attempts != 3 || !rep.Exhausted || rep.Outcome() != "exhausted" {
		t.Errorf("Attempts=%d Exhausted=%v Outcome=%q, want 3/true/exhausted", rep.Attempts, rep.Exhausted, rep.Outcome())
	}
	if rep.Backoff != 30*time.Millisecond { // 10ms + 20ms, doubling
		t.Errorf("accumulated Backoff = %v, want 30ms", rep.Backoff)
	}
}

func TestRetryPermanentFailuresNotRetried(t *testing.T) {
	for _, c := range []struct {
		name    string
		err     error
		outcome string
	}{
		{"plain", errors.New("deterministic bug"), "error"},
		{"marked-permanent", Permanent(Transient(errors.New("x"))), "error"},
		{"canceled", fmt.Errorf("task: %w", context.Canceled), "canceled"},
	} {
		var seeds []uint64
		r := &Runner{Retry: RetryPolicy{MaxAttempts: 5}}
		rep := r.RunTask(context.Background(), flakyTask(c.name, 99, c.err, &seeds), Config{Seed: 1})
		if rep.Attempts != 1 {
			t.Errorf("%s: %d attempts, want 1 (permanent)", c.name, rep.Attempts)
		}
		if rep.Exhausted {
			t.Errorf("%s: Exhausted without spending the budget", c.name)
		}
		if got := rep.Outcome(); got != c.outcome {
			t.Errorf("%s: Outcome = %q, want %q", c.name, got, c.outcome)
		}
	}
}

func TestRetryTimeoutErrorIsTransient(t *testing.T) {
	var seeds []uint64
	timeoutErr := fmt.Errorf("task: %w", context.DeadlineExceeded)
	r := &Runner{Retry: RetryPolicy{MaxAttempts: 2}}
	rep := r.RunTask(context.Background(), flakyTask("slow", 2, timeoutErr, &seeds), Config{Seed: 1})
	if rep.Err != nil || rep.Attempts != 2 {
		t.Errorf("per-attempt timeout not retried: attempts=%d err=%v", rep.Attempts, rep.Err)
	}
}

func TestRetryZeroPolicyIsSingleAttempt(t *testing.T) {
	var seeds []uint64
	r := &Runner{}
	rep := r.RunTask(context.Background(), flakyTask("once", 99, Transient(errors.New("x")), &seeds), Config{Seed: 4})
	if rep.Attempts != 1 || rep.Exhausted {
		t.Errorf("zero policy: attempts=%d exhausted=%v, want one attempt, not exhausted", rep.Attempts, rep.Exhausted)
	}
	if rep.Outcome() != "error" {
		t.Errorf("zero policy Outcome = %q, want error (a 1-budget cannot be exhausted)", rep.Outcome())
	}
	if rep.Seed != DeriveSeed(4, "once") {
		t.Error("zero policy changed the task seed")
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	p := RetryPolicy{Backoff: 100 * time.Millisecond, BackoffCap: 300 * time.Millisecond}
	for attempt, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 300 * time.Millisecond, // capped from 400
		9: 300 * time.Millisecond,
	} {
		if got := p.backoffFor(attempt); got != want {
			t.Errorf("backoffFor(%d) = %v, want %v", attempt, got, want)
		}
	}
	// Default cap is 16x the base.
	p = RetryPolicy{Backoff: time.Millisecond}
	if got := p.backoffFor(20); got != 16*time.Millisecond {
		t.Errorf("default cap: backoffFor(20) = %v, want 16ms", got)
	}
	if got := (RetryPolicy{}).backoffFor(3); got != 0 {
		t.Errorf("zero Backoff yields %v", got)
	}
}

func TestRetrySleepHookObservesBackoff(t *testing.T) {
	var slept []time.Duration
	var seeds []uint64
	r := &Runner{Retry: RetryPolicy{
		MaxAttempts: 3,
		Backoff:     5 * time.Millisecond,
		Sleep:       func(ctx context.Context, d time.Duration) { slept = append(slept, d) },
	}}
	r.RunTask(context.Background(), flakyTask("sleepy", 99, Transient(errors.New("x")), &seeds), Config{Seed: 1})
	if len(slept) != 2 || slept[0] != 5*time.Millisecond || slept[1] != 10*time.Millisecond {
		t.Errorf("Sleep hook saw %v, want [5ms 10ms]", slept)
	}
}

func TestDefaultClassify(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{Transient(errors.New("x")), true},
		{fmt.Errorf("wrap: %w", Transient(errors.New("x"))), true},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), true},
		{Permanent(errors.New("x")), false},
		{fmt.Errorf("wrap: %w", context.Canceled), false},
		{errors.New("plain"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := DefaultClassify(c.err); got != c.want {
			t.Errorf("DefaultClassify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	// The markers wrap rather than replace: errors.Is sees through.
	cause := errors.New("cause")
	if !errors.Is(Transient(cause), cause) || !errors.Is(Permanent(cause), cause) {
		t.Error("markers hide their cause from errors.Is")
	}
	if Transient(nil) != nil || Permanent(nil) != nil {
		t.Error("marking nil is not nil")
	}
}

func TestAttemptSeedIdentityAndDistinctness(t *testing.T) {
	if attemptSeed(7, 1) != 7 || attemptSeed(7, 0) != 7 {
		t.Error("attempt 1 must keep the task seed")
	}
	seen := map[uint64]int{7: 1}
	for n := 2; n < 8; n++ {
		s := attemptSeed(7, n)
		if prev, dup := seen[s]; dup {
			t.Errorf("attemptSeed(7, %d) collides with attempt %d", n, prev)
		}
		seen[s] = n
	}
}
