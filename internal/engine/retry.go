package engine

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// RetryPolicy makes RunTask re-run failed tasks: the suite-level
// counterpart of the attack loop's per-bit retries. A policy only ever
// re-runs *transient* failures — interference, timeouts, anything
// marked Transient — never deterministic bugs, which would fail
// identically forever.
//
// Every attempt runs with a distinct derived seed
// (DeriveSeed(taskSeed, "attempt", n) for attempt n > 1), so a retry is
// a genuinely different randomization of the same experiment rather
// than a replay of the exact failing schedule; attempt 1 keeps the
// task's standard derived seed, so enabling a policy changes nothing
// for tasks that succeed first try.
type RetryPolicy struct {
	// MaxAttempts bounds the total runs of one task. Values <= 1
	// disable retries (the zero policy is a no-op).
	MaxAttempts int
	// Backoff is the base delay inserted before the second attempt;
	// it doubles per subsequent attempt, capped by BackoffCap. The
	// delay is *simulated* by default: accumulated into
	// Report.Backoff for ledgers and logs but not slept, keeping
	// suite runs deterministic and fast. Install Sleep to make it
	// real (daemon-style callers).
	Backoff time.Duration
	// BackoffCap bounds one backoff interval; zero means 16*Backoff.
	BackoffCap time.Duration
	// Classify overrides the transient-vs-permanent decision. Nil uses
	// DefaultClassify.
	Classify func(error) bool
	// Sleep, when non-nil, is called with each backoff delay. It must
	// honor ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration)
}

// max returns the effective attempt bound.
func (p RetryPolicy) max() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// transient reports whether err is worth another attempt.
func (p RetryPolicy) transient(err error) bool {
	if p.Classify != nil {
		return p.Classify(err)
	}
	return DefaultClassify(err)
}

// backoffFor returns the capped delay inserted after the given
// (1-based, failed) attempt.
func (p RetryPolicy) backoffFor(attempt int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	lim := p.BackoffCap
	if lim <= 0 {
		lim = 16 * p.Backoff
	}
	d := p.Backoff
	for i := 1; i < attempt && d < lim; i++ {
		d *= 2
	}
	if d > lim {
		d = lim
	}
	return d
}

// transientMark / permanentMark implement the error-classification
// markers. They wrap (not replace) the cause, so errors.Is/As still see
// through them.
type transientMark struct{ err error }

func (e transientMark) Error() string { return "transient: " + e.err.Error() }
func (e transientMark) Unwrap() error { return e.err }

type permanentMark struct{ err error }

func (e permanentMark) Error() string { return "permanent: " + e.err.Error() }
func (e permanentMark) Unwrap() error { return e.err }

// Transient marks err as retryable regardless of the default
// classification. Experiments use it for failures that a different
// randomization can heal (a failed pre-attack search under noise).
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return transientMark{err}
}

// Permanent marks err as terminal: no retry, whatever the policy.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentMark{err}
}

// DefaultClassify is the stock transient-vs-permanent decision:
//
//   - errors marked Permanent, and context.Canceled, are permanent —
//     retrying canceled work is disobedience, not resilience;
//   - errors marked Transient are transient;
//   - a per-attempt timeout (context.DeadlineExceeded) is transient:
//     rough scheduling is exactly what retries exist for;
//   - everything else is permanent — in a deterministic simulation an
//     unexplained failure reproduces, so retrying it only burns time.
func DefaultClassify(err error) bool {
	var pm permanentMark
	if errors.As(err, &pm) || errors.Is(err, context.Canceled) {
		return false
	}
	var tm transientMark
	if errors.As(err, &tm) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// attemptSeed derives the seed of one retry attempt from the task's
// standard derived seed. Attempt 1 is the identity: retry-enabled and
// retry-free runs agree whenever no retry fires.
func attemptSeed(taskSeed uint64, attempt int) uint64 {
	if attempt <= 1 {
		return taskSeed
	}
	return DeriveSeed(taskSeed, "attempt", fmt.Sprint(attempt))
}
