package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"time"
)

// Task is one schedulable experiment.
type Task struct {
	// ID is the short name ("fig2", "table2"); it keys seed derivation.
	ID string
	// Artifact and Description annotate reports and exports.
	Artifact    string
	Description string
	// Run executes the task. The config's Seed is already derived for
	// this task; Run must treat ctx as the cancellation signal and
	// return promptly once it is done.
	Run func(ctx context.Context, cfg Config) (Result, error)
}

// Report is the outcome of one task run.
type Report struct {
	Task Task
	// Seed is the derived seed the task actually ran with.
	Seed uint64
	// Result is nil when Err != nil.
	Result Result
	// Err is the task's failure: an error return, a recovered panic,
	// a timeout, or cancellation. The rest of the suite is unaffected.
	Err error
	// Wall is the task's wall-clock duration — the one deliberately
	// nondeterministic field (excluded from deterministic exports).
	Wall time.Duration
	// Panicked marks Err as a recovered panic.
	Panicked bool
}

// Runner executes tasks under the engine's scheduling policy.
type Runner struct {
	// Pool bounds suite-level (and, via the context, experiment-
	// internal) parallelism. nil runs sequentially.
	Pool *Pool
	// Timeout bounds each task's wall time; 0 means unbounded. A task
	// exceeding it is reported as failed. Its goroutine is signalled
	// through context cancellation and abandoned if it ignores the
	// signal, so even a non-cooperative task cannot stall the suite.
	Timeout time.Duration
	// OnStart, when non-nil, observes each task just before its Run is
	// invoked, with the derived seed it will run with (start order,
	// concurrently under parallel execution) — progress reporting, not
	// part of the deterministic output.
	OnStart func(t Task, seed uint64)
	// OnDone, when non-nil, observes each report as its task finishes
	// (completion order, concurrently under parallel execution) —
	// progress reporting, not part of the deterministic output.
	OnDone func(Report)
}

// RunTask executes one task with the runner's timeout, panic recovery,
// and per-task seed derivation.
func (r *Runner) RunTask(ctx context.Context, t Task, cfg Config) Report {
	ctx = WithPool(ctx, r.Pool)
	cfg.Seed = DeriveSeed(cfg.Seed, t.ID)
	rep := Report{Task: t, Seed: cfg.Seed}
	cancel := func() {}
	if r.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, r.Timeout)
	}
	defer cancel()

	if r.OnStart != nil {
		r.OnStart(t, cfg.Seed)
	}
	start := time.Now()
	type outcome struct {
		res      Result
		err      error
		panicked bool
	}
	done := make(chan outcome, 1)
	go func() {
		var o outcome
		defer func() {
			if p := recover(); p != nil {
				o = outcome{
					err:      fmt.Errorf("engine: task %s panicked: %v\n%s", t.ID, p, debug.Stack()),
					panicked: true,
				}
			}
			done <- o
		}()
		o.res, o.err = t.Run(ctx, cfg)
	}()

	select {
	case o := <-done:
		rep.Result, rep.Err, rep.Panicked = o.res, o.err, o.panicked
	case <-ctx.Done():
		// The task ignored cancellation past the deadline; abandon its
		// goroutine and report the timeout.
		rep.Err = fmt.Errorf("engine: task %s: %w", t.ID, ctx.Err())
	}
	rep.Wall = time.Since(start)
	if rep.Err != nil {
		rep.Result = nil
	}
	if r.OnDone != nil {
		r.OnDone(rep)
	}
	return rep
}

// RunSuite executes tasks on the runner's pool and returns one report
// per task in task order, regardless of completion order. Errors are
// per-report; the suite itself always completes. Tasks that never start
// because ctx was canceled are reported as failed with the
// cancellation error.
func (r *Runner) RunSuite(ctx context.Context, tasks []Task, cfg Config) []Report {
	reports, _ := Map(WithPool(ctx, r.Pool), len(tasks), func(i int) (Report, error) {
		return r.RunTask(ctx, tasks[i], cfg), nil
	})
	for i := range reports {
		if reports[i].Task.Run == nil { // zero value: Map skipped it on cancellation
			err := ctx.Err()
			if err == nil {
				err = context.Canceled
			}
			reports[i] = Report{
				Task: tasks[i],
				Seed: DeriveSeed(cfg.Seed, tasks[i].ID),
				Err:  fmt.Errorf("engine: task %s: %w", tasks[i].ID, err),
			}
			// Tasks skipped by cancellation never reach RunTask, but
			// observers (progress, ledger) must still see them finish.
			if r.OnDone != nil {
				r.OnDone(reports[i])
			}
		}
	}
	return reports
}

// Outcome classifies the report for ledgers and structured logs:
// "ok", "panic", "timeout", "canceled" or "error".
func (r Report) Outcome() string {
	switch {
	case r.Err == nil:
		return "ok"
	case r.Panicked:
		return "panic"
	case errors.Is(r.Err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(r.Err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}

// Failed counts reports with errors.
func Failed(reports []Report) int {
	n := 0
	for _, rep := range reports {
		if rep.Err != nil {
			n++
		}
	}
	return n
}

// FormatText renders reports in the suite's paper-layout text form —
// exactly what cmd/experiments prints to stdout. The rendering contains
// no wall-clock times, so it is byte-identical for the same base seed
// at any parallelism level.
func FormatText(w io.Writer, reports []Report) {
	for _, rep := range reports {
		fmt.Fprintf(w, "=== %s (%s): %s ===\n", rep.Task.ID, rep.Task.Artifact, rep.Task.Description)
		if rep.Err != nil {
			fmt.Fprintf(w, "!!! %s failed: %v\n", rep.Task.ID, rep.Err)
		} else {
			fmt.Fprint(w, rep.Result)
		}
		fmt.Fprintf(w, "--- %s done ---\n\n", rep.Task.ID)
	}
}

// ExportMeta annotates a WriteJSON export.
type ExportMeta struct {
	// BaseSeed is the suite's base seed (tasks run on derived seeds).
	BaseSeed uint64
	// Quick records the scale the suite ran at.
	Quick bool
}

// WriteJSON writes reports as the structured export consumed by
// downstream tooling. Schema (stable key order):
//
//	{
//	  "schema": "branchscope.experiments/v1",
//	  "base_seed": <uint>,       // suite base seed
//	  "quick": <bool>,           // test-scale configurations?
//	  "experiments": [
//	    {
//	      "id": <string>,        // registry ID ("fig2", "table2", ...)
//	      "artifact": <string>,  // paper table/figure
//	      "description": <string>,
//	      "seed": <uint>,        // derived seed the task ran with
//	      "error": <string>,     // "" on success
//	      "rows": [ {<experiment-specific ordered keys>}, ... ],
//	      "wall_seconds": <float> // nondeterministic; 0 in golden tests
//	    }, ...
//	  ]
//	}
//
// Everything except wall_seconds is deterministic per base seed.
func WriteJSON(w io.Writer, meta ExportMeta, reports []Report) error {
	type expJSON struct {
		ID          string  `json:"id"`
		Artifact    string  `json:"artifact"`
		Description string  `json:"description"`
		Seed        uint64  `json:"seed"`
		Error       string  `json:"error"`
		Rows        []Row   `json:"rows"`
		WallSeconds float64 `json:"wall_seconds"`
	}
	type exportJSON struct {
		Schema      string    `json:"schema"`
		BaseSeed    uint64    `json:"base_seed"`
		Quick       bool      `json:"quick"`
		Experiments []expJSON `json:"experiments"`
	}
	out := exportJSON{
		Schema:      "branchscope.experiments/v1",
		BaseSeed:    meta.BaseSeed,
		Quick:       meta.Quick,
		Experiments: make([]expJSON, 0, len(reports)),
	}
	for _, rep := range reports {
		e := expJSON{
			ID:          rep.Task.ID,
			Artifact:    rep.Task.Artifact,
			Description: rep.Task.Description,
			Seed:        rep.Seed,
			Rows:        []Row{},
			WallSeconds: rep.Wall.Seconds(),
		}
		if rep.Err != nil {
			e.Error = rep.Err.Error()
		} else {
			e.Rows = rep.Result.Rows()
		}
		out.Experiments = append(out.Experiments, e)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
