package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Task is one schedulable experiment.
type Task struct {
	// ID is the short name ("fig2", "table2"); it keys seed derivation.
	ID string
	// Artifact and Description annotate reports and exports.
	Artifact    string
	Description string
	// Family groups tasks for circuit breaking: repeated permanent
	// failures in one family open that family's breaker and skip its
	// remaining tasks (see BreakerSet). Empty means the task is its own
	// family — an isolated failure can never short-circuit anything else.
	Family string
	// Run executes the task. The config's Seed is already derived for
	// this task; Run must treat ctx as the cancellation signal and
	// return promptly once it is done.
	Run func(ctx context.Context, cfg Config) (Result, error)
}

// family resolves the breaker grouping: an explicit Family, or the
// task's own ID (a family of one).
func (t Task) family() string {
	if t.Family != "" {
		return t.Family
	}
	return t.ID
}

// BreakerFamily exposes the resolved breaker grouping for schedulers
// outside the package (the fabric coordinator admits tasks against a
// shared BreakerSet before dispatching them to workers, and must group
// exactly as RunTask would).
func (t Task) BreakerFamily() string { return t.family() }

// SkippedBreakerReport builds the report RunTask produces for a task
// short-circuited by an open breaker. Exported because the fabric
// coordinator settles admission-refused tasks without a runner, and
// the report bytes must match a single-process run's exactly.
func SkippedBreakerReport(t Task, seed uint64, runID string) Report {
	return Report{
		Task: t, Seed: seed, RunID: runID,
		SkippedBreaker: true,
		Err:            fmt.Errorf("engine: task %s: %w (family %q)", t.ID, ErrBreakerOpen, t.family()),
	}
}

// Report is the outcome of one task run.
type Report struct {
	Task Task
	// Seed is the derived seed the task actually ran with.
	Seed uint64
	// Result is nil when Err != nil.
	Result Result
	// Err is the task's failure: an error return, a recovered panic,
	// a timeout, or cancellation. The rest of the suite is unaffected.
	Err error
	// Wall is the task's wall-clock duration — the one deliberately
	// nondeterministic field (excluded from deterministic exports).
	Wall time.Duration
	// Panicked marks Err as a recovered panic.
	Panicked bool
	// Attempts is how many times the task ran (1 without a retry
	// policy, or when the first attempt settled it).
	Attempts int
	// Backoff is the total backoff delay charged between attempts
	// (simulated unless the policy installs a real Sleep).
	Backoff time.Duration
	// Exhausted marks a transient failure that consumed the full retry
	// budget: the task kept failing retryably until MaxAttempts.
	Exhausted bool
	// Stuck marks a task that exceeded the runner's soft Watchdog
	// deadline while running. Unlike a timeout it is advisory: the task
	// kept running (and may well have finished), so Stuck can be true on
	// a successful report. Excluded from deterministic exports.
	Stuck bool
	// SkippedBreaker marks a task that never ran because its family's
	// circuit breaker was open (see BreakerSet); Err carries
	// ErrBreakerOpen.
	SkippedBreaker bool
	// Replayed marks a report reconstructed from a campaign journal
	// instead of a fresh run (see internal/campaign): Result renders the
	// checkpointed bytes and Wall is zero.
	Replayed bool
	// RunID is the run's causal identity (see internal/runstore),
	// stamped from Runner.RunID so every observer hook can join the
	// report to its archive. Empty when the runner has no identity.
	RunID string
}

// Runner executes tasks under the engine's scheduling policy.
type Runner struct {
	// Pool bounds suite-level (and, via the context, experiment-
	// internal) parallelism. nil runs sequentially.
	Pool *Pool
	// Timeout bounds each task's wall time; 0 means unbounded. A task
	// exceeding it is reported as failed. Its goroutine is signalled
	// through context cancellation and abandoned if it ignores the
	// signal, so even a non-cooperative task cannot stall the suite.
	Timeout time.Duration
	// OnStart, when non-nil, observes each task just before its Run is
	// invoked, with the derived seed it will run with (start order,
	// concurrently under parallel execution) — progress reporting, not
	// part of the deterministic output.
	OnStart func(t Task, seed uint64)
	// OnDone, when non-nil, observes each report as its task finishes
	// (completion order, concurrently under parallel execution) —
	// progress reporting, not part of the deterministic output.
	OnDone func(Report)
	// Retry re-runs transiently failed tasks with fresh derived seeds
	// and capped backoff. The zero policy disables retries.
	Retry RetryPolicy
	// Watchdog is the soft per-task deadline: a task still running past
	// it is marked Stuck and reported through OnStuck, but — unlike
	// Timeout — keeps running. 0 disables the watchdog. With retries the
	// deadline covers the whole attempt loop, so a task stuck in retry
	// churn is flagged too.
	Watchdog time.Duration
	// OnStuck, when non-nil, observes each task the moment it exceeds
	// the Watchdog deadline (from the watchdog's timer goroutine) —
	// progress reporting, not part of the deterministic output.
	OnStuck func(t Task, seed uint64)
	// Breakers, when non-nil, short-circuits task families that keep
	// failing permanently (see BreakerSet). nil disables circuit
	// breaking.
	Breakers *BreakerSet
	// RunID, when set, is stamped into every Report so downstream
	// observers (ledger, archive) can join outcomes to a run identity.
	RunID string
}

// RunTask executes one task with the runner's timeout, panic recovery,
// per-task seed derivation, and — under a retry policy — re-runs of
// transient failures on per-attempt derived seeds. The timeout applies
// per attempt; a retried task may consume up to MaxAttempts × Timeout.
func (r *Runner) RunTask(ctx context.Context, t Task, cfg Config) Report {
	ctx = WithPool(ctx, r.Pool)
	taskSeed := DeriveSeed(cfg.Seed, t.ID)
	rep := Report{Task: t, Seed: taskSeed, RunID: r.RunID}

	if !r.Breakers.Admit(t.family()) {
		// The family's breaker is open: don't even start the task (no
		// OnStart), but observers must still see it finish.
		rep = SkippedBreakerReport(t, taskSeed, r.RunID)
		if r.OnDone != nil {
			r.OnDone(rep)
		}
		return rep
	}

	if r.OnStart != nil {
		r.OnStart(t, taskSeed)
	}
	var stuck atomic.Bool
	if r.Watchdog > 0 {
		w := time.AfterFunc(r.Watchdog, func() {
			stuck.Store(true)
			if r.OnStuck != nil {
				r.OnStuck(t, taskSeed)
			}
		})
		defer w.Stop()
	}
	start := time.Now()
	for attempt := 1; ; attempt++ {
		cfg.Seed = attemptSeed(taskSeed, attempt)
		rep.Seed = cfg.Seed
		rep.Attempts = attempt
		rep.Result, rep.Err, rep.Panicked = r.attempt(ctx, t, cfg)
		if rep.Err == nil || rep.Panicked {
			break
		}
		if ctx.Err() != nil || !r.Retry.transient(rep.Err) {
			break
		}
		if attempt >= r.Retry.max() {
			// A transient failure that survived the whole budget —
			// only a real budget can be exhausted.
			rep.Exhausted = r.Retry.max() > 1
			break
		}
		d := r.Retry.backoffFor(attempt)
		rep.Backoff += d
		if r.Retry.Sleep != nil && d > 0 {
			r.Retry.Sleep(ctx, d)
		}
	}
	rep.Wall = time.Since(start)
	rep.Stuck = stuck.Load()
	if rep.Err != nil {
		rep.Result = nil
	}
	r.Breakers.Observe(t.family(), rep.Outcome())
	if r.OnDone != nil {
		r.OnDone(rep)
	}
	return rep
}

// attempt runs the task body once under the per-attempt timeout with
// panic isolation.
func (r *Runner) attempt(ctx context.Context, t Task, cfg Config) (Result, error, bool) {
	cancel := func() {}
	if r.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, r.Timeout)
	}
	defer cancel()

	type outcome struct {
		res      Result
		err      error
		panicked bool
	}
	done := make(chan outcome, 1)
	go func() {
		var o outcome
		defer func() {
			if p := recover(); p != nil {
				o = outcome{
					err:      fmt.Errorf("engine: task %s panicked: %v\n%s", t.ID, p, debug.Stack()),
					panicked: true,
				}
			}
			done <- o
		}()
		o.res, o.err = t.Run(ctx, cfg)
	}()

	select {
	case o := <-done:
		return o.res, o.err, o.panicked
	case <-ctx.Done():
		// The task ignored cancellation past the deadline; abandon its
		// goroutine and report the timeout.
		return nil, fmt.Errorf("engine: task %s: %w", t.ID, ctx.Err()), false
	}
}

// RunSuite executes tasks on the runner's pool and returns one report
// per task in task order, regardless of completion order. Errors are
// per-report; the suite itself always completes. Tasks that never start
// because ctx was canceled are reported as failed with the
// cancellation error.
func (r *Runner) RunSuite(ctx context.Context, tasks []Task, cfg Config) []Report {
	reports, _ := Map(WithPool(ctx, r.Pool), len(tasks), func(i int) (Report, error) {
		return r.RunTask(ctx, tasks[i], cfg), nil
	})
	for i := range reports {
		if reports[i].Task.Run == nil { // zero value: Map skipped it on cancellation
			err := ctx.Err()
			if err == nil {
				err = context.Canceled
			}
			reports[i] = Report{
				Task:  tasks[i],
				Seed:  DeriveSeed(cfg.Seed, tasks[i].ID),
				Err:   fmt.Errorf("engine: task %s: %w", tasks[i].ID, err),
				RunID: r.RunID,
			}
			// Tasks skipped by cancellation never reach RunTask, but
			// observers (progress, ledger) must still see them finish.
			if r.OnDone != nil {
				r.OnDone(reports[i])
			}
		}
	}
	return reports
}

// Outcome classifies the report for ledgers and structured logs:
// "ok", "retried-ok" (success that needed more than one attempt),
// "replayed" (reconstructed from a campaign journal, not re-run),
// "skipped-open-breaker" (never ran: the family's circuit breaker was
// open), "panic", "exhausted" (transient failure that consumed the
// whole retry budget), "timeout", "canceled" or "error". Timeout and
// cancellation are deliberately distinct outcomes: a timeout is the
// task's own budget expiring (actionable per task), a cancellation is
// the operator or a parent tearing the suite down (not the task's
// fault).
func (r Report) Outcome() string {
	switch {
	case r.SkippedBreaker:
		return "skipped-open-breaker"
	case r.Replayed:
		return "replayed"
	case r.Err == nil && r.Attempts > 1:
		return "retried-ok"
	case r.Err == nil:
		return "ok"
	case r.Panicked:
		return "panic"
	case r.Exhausted:
		return "exhausted"
	case errors.Is(r.Err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(r.Err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}

// Failed counts reports with errors.
func Failed(reports []Report) int {
	n := 0
	for _, rep := range reports {
		if rep.Err != nil {
			n++
		}
	}
	return n
}

// FormatText renders reports in the suite's paper-layout text form —
// exactly what cmd/experiments prints to stdout. The rendering contains
// no wall-clock times, so it is byte-identical for the same base seed
// at any parallelism level.
func FormatText(w io.Writer, reports []Report) {
	for _, rep := range reports {
		fmt.Fprintf(w, "=== %s (%s): %s ===\n", rep.Task.ID, rep.Task.Artifact, rep.Task.Description)
		if rep.Err != nil {
			fmt.Fprintf(w, "!!! %s failed: %v\n", rep.Task.ID, rep.Err)
		} else {
			fmt.Fprint(w, rep.Result)
		}
		fmt.Fprintf(w, "--- %s done ---\n\n", rep.Task.ID)
	}
}

// ExportMeta annotates a WriteJSON export.
type ExportMeta struct {
	// BaseSeed is the suite's base seed (tasks run on derived seeds).
	BaseSeed uint64
	// Quick records the scale the suite ran at.
	Quick bool
	// RunID, when set, stamps the export with the run's causal
	// identity (see internal/runstore). Omitted from the JSON when
	// empty, so exports without an identity keep their legacy shape.
	RunID string
}

// WriteJSON writes reports as the structured export consumed by
// downstream tooling. Schema (stable key order):
//
//	{
//	  "schema": "branchscope.experiments/v1",
//	  "run_id": <string>,        // causal run identity; omitted when unset
//	  "base_seed": <uint>,       // suite base seed
//	  "quick": <bool>,           // test-scale configurations?
//	  "experiments": [
//	    {
//	      "id": <string>,        // registry ID ("fig2", "table2", ...)
//	      "artifact": <string>,  // paper table/figure
//	      "description": <string>,
//	      "seed": <uint>,        // derived seed the task ran with
//	      "error": <string>,     // "" on success
//	      "rows": [ {<experiment-specific ordered keys>}, ... ],
//	      "wall_seconds": <float> // nondeterministic; 0 in golden tests
//	    }, ...
//	  ]
//	}
//
// Everything except wall_seconds is deterministic per base seed.
func WriteJSON(w io.Writer, meta ExportMeta, reports []Report) error {
	type expJSON struct {
		ID          string  `json:"id"`
		Artifact    string  `json:"artifact"`
		Description string  `json:"description"`
		Seed        uint64  `json:"seed"`
		Error       string  `json:"error"`
		Rows        []Row   `json:"rows"`
		WallSeconds float64 `json:"wall_seconds"`
	}
	type exportJSON struct {
		Schema      string    `json:"schema"`
		RunID       string    `json:"run_id,omitempty"`
		BaseSeed    uint64    `json:"base_seed"`
		Quick       bool      `json:"quick"`
		Experiments []expJSON `json:"experiments"`
	}
	out := exportJSON{
		Schema:      "branchscope.experiments/v1",
		RunID:       meta.RunID,
		BaseSeed:    meta.BaseSeed,
		Quick:       meta.Quick,
		Experiments: make([]expJSON, 0, len(reports)),
	}
	for _, rep := range reports {
		e := expJSON{
			ID:          rep.Task.ID,
			Artifact:    rep.Task.Artifact,
			Description: rep.Task.Description,
			Seed:        rep.Seed,
			Rows:        []Row{},
			WallSeconds: rep.Wall.Seconds(),
		}
		if rep.Err != nil {
			e.Error = rep.Err.Error()
		} else {
			e.Rows = rep.Result.Rows()
		}
		out.Experiments = append(out.Experiments, e)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
