package engine

import (
	"errors"
	"sort"
	"sync"
)

// ErrBreakerOpen is the sentinel carried by reports whose task was
// skipped because its family's circuit breaker was open. It classifies
// as a permanent failure (never retried): re-running the task would hit
// the same open breaker.
var ErrBreakerOpen = errors.New("circuit breaker open")

// BreakerStatus is one family's breaker state for /statusz and logs.
type BreakerStatus struct {
	Family string `json:"family"`
	State  string `json:"state"` // closed | open
	// ConsecutiveFailures is the current run of permanent failures
	// (reset to zero by any success).
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Skipped counts tasks short-circuited while the breaker was open.
	Skipped int `json:"skipped"`
}

// BreakerSet is a per-family circuit breaker over task outcomes: after
// Threshold consecutive permanent failures ("error" or "panic" — not
// timeouts, cancellations or exhausted retries, which say nothing about
// the family's code being broken) in one family, the family's breaker
// opens and its remaining tasks are skipped with the
// "skipped-open-breaker" outcome instead of burning wall time on a
// substrate that is demonstrably broken. A success closes the failure
// run; an open breaker stays open for the rest of the suite (campaigns
// are one-shot — a resumed run starts with fresh breakers).
//
// All methods are safe for concurrent use and no-ops on a nil set.
// Note that "consecutive" is observed in completion order, which under
// parallel execution depends on scheduling: circuit breaking trades
// determinism for liveness on failing suites only — a healthy suite
// never observes a failure, so the byte-identical-output contract is
// unaffected.
type BreakerSet struct {
	threshold int

	mu   sync.Mutex
	fams map[string]*breakerState
}

type breakerState struct {
	consecutive int
	skipped     int
	open        bool
}

// NewBreakerSet returns a set opening after threshold consecutive
// permanent failures per family, or nil (circuit breaking disabled)
// when threshold < 1.
func NewBreakerSet(threshold int) *BreakerSet {
	if threshold < 1 {
		return nil
	}
	return &BreakerSet{threshold: threshold, fams: make(map[string]*breakerState)}
}

// Admit reports whether a task of the family may run, counting a
// skipped task when it may not. A nil set admits everything.
func (b *BreakerSet) Admit(family string) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.fams[family]
	if st == nil || !st.open {
		return true
	}
	st.skipped++
	return false
}

// Observe feeds one finished task's outcome into the family's breaker.
func (b *BreakerSet) Observe(family, outcome string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch outcome {
	case "ok", "retried-ok", "replayed":
		if st := b.fams[family]; st != nil {
			st.consecutive = 0
		}
	case "error", "panic":
		st := b.fams[family]
		if st == nil {
			st = &breakerState{}
			b.fams[family] = st
		}
		st.consecutive++
		if st.consecutive >= b.threshold {
			st.open = true
		}
	}
}

// AnyOpen reports whether any family's breaker is open — the /readyz
// degradation signal.
func (b *BreakerSet) AnyOpen() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, st := range b.fams {
		if st.open {
			return true
		}
	}
	return false
}

// Status returns the state of every family that has recorded at least
// one permanent failure, sorted by family name. Healthy families are
// omitted: an empty slice means no breaker has anything to report.
func (b *BreakerSet) Status() []BreakerStatus {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BreakerStatus, 0, len(b.fams))
	for fam, st := range b.fams {
		s := BreakerStatus{Family: fam, State: "closed",
			ConsecutiveFailures: st.consecutive, Skipped: st.skipped}
		if st.open {
			s.State = "open"
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Family < out[j].Family })
	return out
}
