// Package runstore gives every run a durable, causal identity and an
// on-disk archive to hang its artifacts on. BranchScope's evaluation is
// comparative — error rates across probe variants, CPUs, noise levels
// and mitigations (§5–§7) — so "did this change regress the channel?"
// needs two runs to be *joinable*: same identity means same expected
// bytes, and any divergence is a finding, not noise.
//
// The identity is a RunID: a hash of the manifest schema, the base
// seed, the invocation family (program + ordered task list + scale) and
// a digest of the result-shaping configuration. Flags that only change
// *how* a run executes — `-parallel`, `-checkpoint`/`-resume`,
// `-watchdog`, the fabric flags (`-coordinator`/`-workers`/`-worker`),
// output paths — are deliberately excluded, so a run resumed after a
// crash, re-run at a different `-parallel` width, or distributed
// across a worker pool archives under the same RunID with a
// byte-identical manifest. That makes the
// archive a regression oracle: CI runs a suite twice and `bsctl diff`
// must come back empty.
//
// A run's archive is a directory `<archive>/<run-id>/` holding a
// `branchscope.run/v1` manifest plus copies of every sink the run
// produced (ledger, journal, leakage report, metrics, ...) and two
// artifacts the archiver renders itself: the canonical report text and
// the canonical JSON export (wall times zeroed). Artifacts whose bytes
// are deterministic per identity carry a content digest in the
// manifest; artifacts that legitimately vary between equivalent runs
// (wall clocks, last-writer-wins live slots, append-mode ledgers) are
// marked volatile and carry none, keeping the manifest itself
// byte-identical. The manifest is written last, via temp-file+rename
// like the campaign journal, so an archive directory either holds a
// complete run or no manifest at all.
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"branchscope/internal/campaign"
)

// Schema versions the run manifest; bump on incompatible change.
const Schema = "branchscope.run/v1"

// ManifestName is the manifest's file name inside a run directory.
const ManifestName = "manifest.json"

// Identity is the causal identity of a run: everything that shapes the
// deterministic result bytes, and nothing that merely shapes execution.
// Config values must be plain JSON types (strings, bools, numbers) so
// the identity survives a marshal round trip unchanged.
type Identity struct {
	Program  string   `json:"program"`
	BaseSeed uint64   `json:"base_seed"`
	Quick    bool     `json:"quick"`
	// Tasks is the ordered task-ID list — the invocation family. A
	// different selection or order is a different run.
	Tasks []string `json:"tasks"`
	// Config carries the result-shaping flags (chaos plan, retry
	// budget, timeout, experiment-specific knobs). Execution-shape
	// flags (-parallel, -checkpoint, -resume, -watchdog, the fabric
	// flags -coordinator/-workers/-worker, sink paths)
	// must never appear here: the RunID is the contract that they
	// cannot change the result.
	Config map[string]any `json:"config"`
}

// RunID derives the deterministic run identifier: "bsr-" plus the
// first 16 hex digits of SHA-256 over the schema string and the
// identity's canonical JSON. Stable across -parallel and -resume by
// construction (neither appears in the identity), and stable across a
// manifest round trip (Go marshals maps with sorted keys and floats in
// shortest form, so re-marshaling loaded config reproduces the bytes).
func (id Identity) RunID() string {
	if id.Tasks == nil {
		id.Tasks = []string{}
	}
	if id.Config == nil {
		id.Config = map[string]any{}
	}
	payload := struct {
		Schema string `json:"schema"`
		Identity
	}{Schema: Schema, Identity: id}
	b, err := json.Marshal(payload)
	if err != nil {
		// Config broke the plain-JSON-types contract; a panic here is a
		// programming error in the caller, not a runtime condition.
		panic(fmt.Sprintf("runstore: identity not marshalable: %v", err))
	}
	sum := sha256.Sum256(b)
	return "bsr-" + hex.EncodeToString(sum[:8])
}

// TaskOutcome is one task's settled state in a manifest.
type TaskOutcome struct {
	ID   string `json:"id"`
	Seed uint64 `json:"seed"`
	// Outcome is the canonical engine classification (see
	// CanonicalOutcome): a replayed task reports what it originally
	// settled as, so resumed runs archive identically.
	Outcome  string `json:"outcome"`
	Attempts int    `json:"attempts,omitempty"`
	// Error is the failure's first line (panic stacks and wrapped
	// detail carry addresses and goroutine IDs that would break the
	// manifest's byte-identity).
	Error string `json:"error,omitempty"`
}

// CanonicalOutcome maps an engine outcome to its identity-stable form:
// "replayed" resolves to what the journaled run originally settled as
// ("retried-ok" when it took more than one attempt, "ok" otherwise),
// everything else passes through. Two runs of the same identity — one
// uninterrupted, one crashed and resumed — then record identical
// outcome vectors.
func CanonicalOutcome(outcome string, attempts int) string {
	if outcome == "replayed" {
		if attempts > 1 {
			return "retried-ok"
		}
		return "ok"
	}
	return outcome
}

// Artifact is one archived file in a manifest.
type Artifact struct {
	// Kind names the sink ("report", "export", "journal", "ledger",
	// "metrics", "trace", "leakage", "introspect").
	Kind string `json:"kind"`
	// Name is the file's name inside the run directory.
	Name string `json:"name"`
	// Digest is "sha256:<hex>" over the artifact's identity-stable
	// content: raw bytes for deterministic artifacts, record-sorted
	// bytes for the journal. Empty for volatile artifacts.
	Digest string `json:"digest,omitempty"`
	// Volatile marks content that legitimately differs between runs of
	// the same identity (wall clocks, live last-writer-wins slots,
	// append-mode accumulation); bsctl diff skips it by default.
	Volatile bool `json:"volatile,omitempty"`
}

// BreakerSummary mirrors one tripped circuit breaker for the manifest.
// Like obs's status shapes it duplicates the engine's form instead of
// importing it, keeping runstore's dependency surface small.
type BreakerSummary struct {
	Family  string `json:"family"`
	State   string `json:"state"`
	Skipped int    `json:"skipped"`
}

// Manifest is the branchscope.run/v1 document: the run's identity, its
// settled outcomes, and every artifact it archived. Everything in it is
// deterministic per identity — no wall clocks, no timestamps, no
// volatile digests — which is what lets CI compare manifests with cmp.
type Manifest struct {
	Schema   string   `json:"schema"`
	RunID    string   `json:"run_id"`
	Identity Identity `json:"identity"`
	// Counts aggregates canonical outcomes ("ok": 9, ...). Maps
	// marshal with sorted keys, so the rendering is stable.
	Counts map[string]int `json:"counts"`
	// Outcomes lists every task's settled state, sorted by task ID.
	Outcomes []TaskOutcome `json:"outcomes"`
	// Breakers lists families whose circuit breaker tripped (normally
	// empty; a tripping breaker is itself a deterministic result of
	// the identity at -parallel 1, and a finding worth diffing at all).
	Breakers []BreakerSummary `json:"breakers,omitempty"`
	// DegradedProbes counts attack sessions that fell back from PMC to
	// timing probing — deterministic per identity for complete runs
	// (the health gate consumes seeded faults, not wall time).
	DegradedProbes uint64 `json:"degraded_probes,omitempty"`
	// Artifacts lists the archived files, sorted by name.
	Artifacts []Artifact `json:"artifacts"`
}

// NewManifest assembles a manifest from an identity and raw outcomes:
// outcomes are canonicalized, error text truncated to its first line,
// the list sorted by ID, and counts aggregated.
func NewManifest(id Identity, outcomes []TaskOutcome) Manifest {
	m := Manifest{
		Schema:   Schema,
		RunID:    id.RunID(),
		Identity: id,
		Counts:   make(map[string]int, 4),
		Outcomes: make([]TaskOutcome, 0, len(outcomes)),
	}
	for _, o := range outcomes {
		o.Outcome = CanonicalOutcome(o.Outcome, o.Attempts)
		if i := strings.IndexByte(o.Error, '\n'); i >= 0 {
			o.Error = o.Error[:i]
		}
		m.Counts[o.Outcome]++
		m.Outcomes = append(m.Outcomes, o)
	}
	sort.Slice(m.Outcomes, func(i, j int) bool { return m.Outcomes[i].ID < m.Outcomes[j].ID })
	return m
}

// WriteManifest renders m as the canonical indented JSON document.
func WriteManifest(w io.Writer, m Manifest) error {
	if m.Schema == "" {
		m.Schema = Schema
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("runstore: encoding manifest: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadManifest parses and schema-checks a manifest document.
func ReadManifest(r io.Reader) (Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("runstore: parsing manifest: %w", err)
	}
	if m.Schema != Schema {
		return Manifest{}, fmt.Errorf("runstore: manifest schema %q, want %q", m.Schema, Schema)
	}
	return m, nil
}

// LoadRun resolves path — a run directory or a manifest file — to the
// run directory and its parsed manifest.
func LoadRun(path string) (dir string, m Manifest, err error) {
	dir = path
	file := filepath.Join(path, ManifestName)
	if fi, statErr := os.Stat(path); statErr == nil && !fi.IsDir() {
		file = path
		dir = filepath.Dir(path)
	}
	f, err := os.Open(file)
	if err != nil {
		return "", Manifest{}, fmt.Errorf("runstore: %w", err)
	}
	defer f.Close()
	m, err = ReadManifest(f)
	if err != nil {
		return "", Manifest{}, fmt.Errorf("runstore: %s: %w", file, err)
	}
	return dir, m, nil
}

// List returns every archived run under dir (direct children holding a
// manifest), sorted by RunID. Children without a manifest — interrupted
// archives, unrelated files — are skipped, not errors.
func List(dir string) ([]Manifest, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		// A missing archive directory means no runs have been archived
		// yet — the live /runs endpoint hits this before the first
		// session closes — not a failure.
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("runstore: %w", err)
	}
	var runs []Manifest
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		_, m, err := LoadRun(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		runs = append(runs, m)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].RunID < runs[j].RunID })
	return runs, nil
}

// DigestBytes fingerprints content as "sha256:<hex>".
func DigestBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// DigestFile fingerprints a file's raw bytes.
func DigestFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}

// CanonicalJournalDigest fingerprints a campaign journal's
// identity-stable content: the header plus every task record re-framed
// in task-ID order. Record order on disk is completion order —
// scheduling-dependent, and reshuffled by a resume compaction — but the
// records themselves are deterministic, so sorting recovers a digest
// that is equal for an uninterrupted run and a crashed-and-resumed one.
func CanonicalJournalDigest(path string) (string, error) {
	h, recs, _, err := campaign.Load(path)
	if err != nil {
		return "", err
	}
	// A journal from a resumed run holds the same records as an
	// uninterrupted one; only order differs. Outcomes inside records
	// are already original ("ok"/"retried-ok"), never "replayed".
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	hash := sha256.New()
	hb, err := json.Marshal(h)
	if err != nil {
		return "", err
	}
	hash.Write(hb)
	hash.Write([]byte{'\n'})
	for _, rec := range recs {
		rb, err := json.Marshal(rec)
		if err != nil {
			return "", err
		}
		hash.Write(rb)
		hash.Write([]byte{'\n'})
	}
	return "sha256:" + hex.EncodeToString(hash.Sum(nil)), nil
}
