package runstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// kindPolicy fixes each artifact kind's archived name, whether its
// content is identity-stable, and how to digest it.
type kindPolicy struct {
	name string
	// volatile content legitimately differs between equivalent runs:
	// wall clocks (metrics, markdown), live last-writer-wins slots
	// (leakage, introspect under -parallel), append-mode accumulation
	// (the ledger), or simulated timelines that a resume truncates
	// (the trace).
	volatile bool
	// digest overrides the raw-bytes digest for artifacts whose
	// on-disk order is scheduling-dependent but whose records are not.
	digest func(path string) (string, error)
}

var kindPolicies = map[string]kindPolicy{
	"report":     {name: "report.txt"},
	"export":     {name: "export.json"},
	"journal":    {name: "journal.jsonl", digest: CanonicalJournalDigest},
	"ledger":     {name: "ledger.jsonl", volatile: true},
	"metrics":    {name: "metrics.json", volatile: true},
	"trace":      {name: "trace.json", volatile: true},
	"leakage":    {name: "leakage.json", volatile: true},
	"introspect": {name: "introspect.json", volatile: true},
	"md":         {name: "results.md", volatile: true},
}

// Archiver accumulates a run's outcomes and artifacts and writes the
// archive directory at the end. All methods are safe for concurrent
// use (runner hooks record outcomes from worker goroutines) and no-ops
// on a nil archiver, matching the repo's nil-safe sink idiom.
type Archiver struct {
	dir string
	id  Identity

	mu       sync.Mutex
	outcomes []TaskOutcome
	breakers []BreakerSummary
	degraded uint64
	files    []pendingFile
	blobs    []pendingBlob
}

type pendingFile struct {
	kind string
	src  string
}

type pendingBlob struct {
	kind string
	data []byte
}

// New returns an archiver writing under dir (the -archive directory;
// the run's own subdirectory is derived from the identity's RunID).
func New(dir string, id Identity) *Archiver {
	return &Archiver{dir: dir, id: id}
}

// RunID returns the archiver's run identifier ("" on nil).
func (a *Archiver) RunID() string {
	if a == nil {
		return ""
	}
	return a.id.RunID()
}

// Record adds one task's settled outcome.
func (a *Archiver) Record(o TaskOutcome) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.outcomes = append(a.outcomes, o)
	a.mu.Unlock()
}

// SetBreakers records tripped circuit breakers for the manifest.
func (a *Archiver) SetBreakers(bs []BreakerSummary) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.breakers = bs
	a.mu.Unlock()
}

// SetDegradedProbes records the health-gate degradation count.
func (a *Archiver) SetDegradedProbes(n uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.degraded = n
	a.mu.Unlock()
}

// AddFile schedules a sink file for archiving under kind's policy. An
// empty path is ignored, so callers can pass flag values unguarded; an
// unknown kind is a programming error surfaced at Write.
func (a *Archiver) AddFile(kind, src string) {
	if a == nil || src == "" {
		return
	}
	a.mu.Lock()
	a.files = append(a.files, pendingFile{kind: kind, src: src})
	a.mu.Unlock()
}

// AddBlob schedules archiver-rendered content (the canonical report
// text, the canonical JSON export) under kind's policy.
func (a *Archiver) AddBlob(kind string, data []byte) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.blobs = append(a.blobs, pendingBlob{kind: kind, data: data})
	a.mu.Unlock()
}

// Write materializes the archive: it creates <dir>/<run-id>/, copies
// every scheduled file, writes every blob, and writes the manifest
// last via temp-file+rename — a run directory with a manifest is
// complete by construction. Returns the run directory.
func (a *Archiver) Write() (string, error) {
	if a == nil {
		return "", nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	m := NewManifest(a.id, a.outcomes)
	m.Breakers = a.breakers
	m.DegradedProbes = a.degraded

	runDir := filepath.Join(a.dir, m.RunID)
	if err := os.MkdirAll(runDir, 0o755); err != nil {
		return "", fmt.Errorf("runstore: creating archive: %w", err)
	}

	for _, b := range a.blobs {
		pol, ok := kindPolicies[b.kind]
		if !ok {
			return "", fmt.Errorf("runstore: unknown artifact kind %q", b.kind)
		}
		if err := os.WriteFile(filepath.Join(runDir, pol.name), b.data, 0o644); err != nil {
			return "", fmt.Errorf("runstore: archiving %s: %w", pol.name, err)
		}
		art := Artifact{Kind: b.kind, Name: pol.name, Volatile: pol.volatile}
		if !pol.volatile {
			art.Digest = DigestBytes(b.data)
		}
		m.Artifacts = append(m.Artifacts, art)
	}
	for _, f := range a.files {
		pol, ok := kindPolicies[f.kind]
		if !ok {
			return "", fmt.Errorf("runstore: unknown artifact kind %q", f.kind)
		}
		if err := copyFile(f.src, filepath.Join(runDir, pol.name)); err != nil {
			return "", fmt.Errorf("runstore: archiving %s: %w", pol.name, err)
		}
		art := Artifact{Kind: f.kind, Name: pol.name, Volatile: pol.volatile}
		switch {
		case pol.digest != nil:
			d, err := pol.digest(f.src)
			if err != nil {
				return "", fmt.Errorf("runstore: digesting %s: %w", pol.name, err)
			}
			art.Digest = d
		case !pol.volatile:
			d, err := DigestFile(f.src)
			if err != nil {
				return "", fmt.Errorf("runstore: digesting %s: %w", pol.name, err)
			}
			art.Digest = d
		}
		m.Artifacts = append(m.Artifacts, art)
	}
	sort.Slice(m.Artifacts, func(i, j int) bool { return m.Artifacts[i].Name < m.Artifacts[j].Name })

	if err := writeManifestAtomic(filepath.Join(runDir, ManifestName), m); err != nil {
		return "", err
	}
	return runDir, nil
}

// writeManifestAtomic writes the manifest via a sibling temp file,
// fsync and rename, mirroring the campaign journal's creation path.
func writeManifestAtomic(path string, m Manifest) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp*")
	if err != nil {
		return fmt.Errorf("runstore: writing manifest: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := WriteManifest(tmp, m); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: syncing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runstore: closing manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("runstore: publishing manifest: %w", err)
	}
	return nil
}

// copyFile copies src to dst, truncating dst.
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
