package runstore

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testIdentity() Identity {
	return Identity{
		Program:  "experiments",
		BaseSeed: 42,
		Quick:    true,
		Tasks:    []string{"fig2", "table1"},
		Config:   map[string]any{"timeout": "2m0s", "retry": float64(3)},
	}
}

func TestRunIDDeterministic(t *testing.T) {
	id := testIdentity()
	a, b := id.RunID(), testIdentity().RunID()
	if a != b {
		t.Fatalf("RunID not deterministic: %q vs %q", a, b)
	}
	if !strings.HasPrefix(a, "bsr-") || len(a) != 4+16 {
		t.Fatalf("RunID %q: want bsr-<16 hex digits>", a)
	}
}

func TestRunIDNormalizesEmpty(t *testing.T) {
	a := Identity{Program: "p"}.RunID()
	b := Identity{Program: "p", Tasks: []string{}, Config: map[string]any{}}.RunID()
	if a != b {
		t.Fatalf("nil and empty Tasks/Config must hash alike: %q vs %q", a, b)
	}
}

func TestRunIDSensitivity(t *testing.T) {
	base := testIdentity()
	variants := map[string]Identity{}
	v := base
	v.BaseSeed = 43
	variants["seed"] = v
	v = base
	v.Quick = false
	variants["quick"] = v
	v = base
	v.Tasks = []string{"table1", "fig2"} // order is part of the family
	variants["task order"] = v
	v = base
	v.Config = map[string]any{"timeout": "2m0s", "retry": float64(4)}
	variants["config"] = v
	for name, variant := range variants {
		if variant.RunID() == base.RunID() {
			t.Errorf("changing %s did not change the RunID", name)
		}
	}
}

// TestRunIDSurvivesRoundTrip guards the property the docs promise: an
// identity loaded back from a manifest (config values now generic JSON
// types) re-derives the same RunID.
func TestRunIDSurvivesRoundTrip(t *testing.T) {
	id := testIdentity()
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	var back Identity
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if got, want := back.RunID(), id.RunID(); got != want {
		t.Fatalf("RunID after JSON round trip = %q, want %q", got, want)
	}
}

func TestCanonicalOutcome(t *testing.T) {
	cases := []struct {
		outcome  string
		attempts int
		want     string
	}{
		{"ok", 1, "ok"},
		{"retried-ok", 3, "retried-ok"},
		{"replayed", 1, "ok"},
		{"replayed", 2, "retried-ok"},
		{"error", 1, "error"},
		{"panic", 1, "panic"},
	}
	for _, c := range cases {
		if got := CanonicalOutcome(c.outcome, c.attempts); got != c.want {
			t.Errorf("CanonicalOutcome(%q, %d) = %q, want %q", c.outcome, c.attempts, got, c.want)
		}
	}
}

func TestNewManifestCanonicalizes(t *testing.T) {
	id := testIdentity()
	m := NewManifest(id, []TaskOutcome{
		{ID: "table1", Seed: 2, Outcome: "replayed", Attempts: 2},
		{ID: "fig2", Seed: 1, Outcome: "error", Error: "boom\ngoroutine 7 [running]:"},
	})
	if m.RunID != id.RunID() {
		t.Fatalf("manifest RunID %q != identity RunID %q", m.RunID, id.RunID())
	}
	if got := []string{m.Outcomes[0].ID, m.Outcomes[1].ID}; got[0] != "fig2" || got[1] != "table1" {
		t.Fatalf("outcomes not sorted by ID: %v", got)
	}
	if m.Outcomes[0].Error != "boom" {
		t.Fatalf("error not truncated to first line: %q", m.Outcomes[0].Error)
	}
	if m.Outcomes[1].Outcome != "retried-ok" {
		t.Fatalf("replayed outcome not canonicalized: %q", m.Outcomes[1].Outcome)
	}
	if m.Counts["error"] != 1 || m.Counts["retried-ok"] != 1 {
		t.Fatalf("counts wrong: %v", m.Counts)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest(testIdentity(), []TaskOutcome{{ID: "fig2", Seed: 1, Outcome: "ok", Attempts: 1}})
	m.Artifacts = []Artifact{
		{Kind: "ledger", Name: "ledger.jsonl", Volatile: true},
		{Kind: "report", Name: "report.txt", Digest: DigestBytes([]byte("x"))},
	}

	var a, b bytes.Buffer
	if err := WriteManifest(&a, m); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(&b, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteManifest is not byte-stable for identical input")
	}

	back, err := ReadManifest(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, m)
	}

	// Re-rendering the loaded manifest must reproduce the bytes — the
	// property bsctl diff and the CI cmp smoke rely on.
	var c bytes.Buffer
	if err := WriteManifest(&c, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("manifest bytes not stable across a read/write round trip")
	}
}

func TestReadManifestRejectsSchema(t *testing.T) {
	if _, err := ReadManifest(strings.NewReader(`{"schema":"branchscope.run/v0"}`)); err == nil {
		t.Fatal("want schema error, got nil")
	}
}

func TestListSkipsIncomplete(t *testing.T) {
	dir := t.TempDir()
	m := NewManifest(testIdentity(), nil)
	if err := os.MkdirAll(filepath.Join(dir, m.RunID), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, m.RunID, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(f, m); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// An interrupted archive (no manifest) and a stray file are skipped.
	if err := os.MkdirAll(filepath.Join(dir, "bsr-interrupted"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	runs, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].RunID != m.RunID {
		t.Fatalf("List = %+v, want exactly %s", runs, m.RunID)
	}
}

func TestSampleFromBench(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_hotpath.json")
	doc := `{"batched_ns_per_branch": 3.5, "speedup": 2.4, "pass": true, "note": "text ignored"}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := SampleFromBench(path)
	if err != nil {
		t.Fatal(err)
	}
	want := Sample{
		"BENCH_hotpath.batched_ns_per_branch": 3.5,
		"BENCH_hotpath.speedup":               2.4,
		"BENCH_hotpath.pass":                  1,
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("sample = %v, want %v", s, want)
	}
}

func TestCheckTruePositiveFalsePositive(t *testing.T) {
	baseline := []Sample{
		{"BENCH_hotpath.speedup": 2.4, "leakage.bit_error_rate": 0.01},
		{"BENCH_hotpath.speedup": 2.5, "leakage.bit_error_rate": 0.012},
		{"BENCH_hotpath.speedup": 2.6, "leakage.bit_error_rate": 0.011},
	}
	opt := DefaultCheckOptions()

	// False-positive check: a candidate inside normal variation passes.
	ok := Sample{"BENCH_hotpath.speedup": 2.45, "leakage.bit_error_rate": 0.011}
	if n := Drifted(Check(baseline, ok, opt)); n != 0 {
		t.Fatalf("in-band candidate flagged %d drifts", n)
	}

	// True-positive check: a collapsed speedup and an exploded BER gate.
	bad := Sample{"BENCH_hotpath.speedup": 1.0, "leakage.bit_error_rate": 0.4}
	findings := Check(baseline, bad, opt)
	if n := Drifted(findings); n != 2 {
		t.Fatalf("synthetic regression flagged %d drifts, want 2: %+v", n, findings)
	}
}

func TestCheckNoisyMetricTolerance(t *testing.T) {
	baseline := []Sample{{"BENCH_hotpath.batched_ns_per_branch": 4.0}}
	opt := DefaultCheckOptions()
	// 3x a wall-clock series is machine noise, not drift (RelNoisy 4).
	if n := Drifted(Check(baseline, Sample{"BENCH_hotpath.batched_ns_per_branch": 12}, opt)); n != 0 {
		t.Fatalf("3x on a noisy ns series flagged as drift")
	}
	// 6x is out even for wall clocks.
	if n := Drifted(Check(baseline, Sample{"BENCH_hotpath.batched_ns_per_branch": 24}, opt)); n != 1 {
		t.Fatalf("6x on a noisy ns series not flagged")
	}
	// The same 3x on a dimensionless ratio IS drift (Rel 0.25).
	if n := Drifted(Check([]Sample{{"BENCH_hotpath.speedup": 4.0}}, Sample{"BENCH_hotpath.speedup": 12}, opt)); n != 1 {
		t.Fatalf("3x on a ratio series not flagged")
	}
}

func TestCheckZeroMedianAbsFloor(t *testing.T) {
	baseline := []Sample{{"leakage.bit_error_rate": 0}}
	// Exactly zero baseline: any visible error rate is drift ...
	if n := Drifted(Check(baseline, Sample{"leakage.bit_error_rate": 0.05}, DefaultCheckOptions())); n != 1 {
		t.Fatal("nonzero BER vs zero baseline not flagged")
	}
	// ... but float dust under the absolute floor is not.
	if n := Drifted(Check(baseline, Sample{"leakage.bit_error_rate": 1e-12}, DefaultCheckOptions())); n != 0 {
		t.Fatal("sub-Abs fuzz flagged as drift")
	}
}

func TestCheckSkipsUnsharedMetrics(t *testing.T) {
	baseline := []Sample{{"a": 1, "only_base": 5}}
	findings := Check(baseline, Sample{"a": 1, "only_cand": 9}, DefaultCheckOptions())
	if len(findings) != 1 || findings[0].Metric != "a" {
		t.Fatalf("want exactly the shared metric, got %+v", findings)
	}
}

func TestLoadSamplesBenchDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_a.json"), []byte(`{"x": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_b.json"), []byte(`{"y": 2, "pass": false}`), 0o644); err != nil {
		t.Fatal(err)
	}
	samples, err := LoadSamples(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []Sample{{"BENCH_a.x": 1, "BENCH_b.y": 2, "BENCH_b.pass": 0}}
	if !reflect.DeepEqual(samples, want) {
		t.Fatalf("samples = %v, want %v", samples, want)
	}
}
