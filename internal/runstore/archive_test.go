package runstore

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"branchscope/internal/campaign"
	"branchscope/internal/engine"
)

// litResult is a deterministic Result whose bytes depend only on the
// seed the task ran with.
type litResult struct {
	id   string
	seed uint64
}

func (r litResult) String() string {
	return fmt.Sprintf("%s settled with seed %d\n", r.id, r.seed)
}

func (r litResult) Rows() []engine.Row {
	return []engine.Row{{engine.F("id", r.id), engine.F("seed", r.seed)}}
}

func suiteTasks() []engine.Task {
	ids := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	tasks := make([]engine.Task, 0, len(ids))
	for _, id := range ids {
		id := id
		tasks = append(tasks, engine.Task{
			ID:       id,
			Artifact: "test",
			Run: func(_ context.Context, cfg engine.Config) (engine.Result, error) {
				return litResult{id: id, seed: cfg.Seed}, nil
			},
		})
	}
	return tasks
}

// archiveReports records reports into an archiver alongside the
// canonical report/export blobs (wall times zeroed, as the CLIs do)
// and an optional journal artifact, writes the archive, and returns
// the manifest's bytes.
func archiveReports(t *testing.T, dir string, id Identity, reports []engine.Report, journal string) []byte {
	t.Helper()
	arc := New(dir, id)
	arc.AddFile("journal", journal)
	for i := range reports {
		reports[i].Wall = 0
		rep := reports[i]
		o := TaskOutcome{ID: rep.Task.ID, Seed: rep.Seed, Outcome: rep.Outcome(), Attempts: rep.Attempts}
		if rep.Err != nil {
			o.Error = rep.Err.Error()
		}
		arc.Record(o)
	}
	var report, export bytes.Buffer
	engine.FormatText(&report, reports)
	if err := engine.WriteJSON(&export, engine.ExportMeta{BaseSeed: id.BaseSeed, Quick: id.Quick}, reports); err != nil {
		t.Fatal(err)
	}
	arc.AddBlob("report", report.Bytes())
	arc.AddBlob("export", export.Bytes())

	runDir, err := arc.Write()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(runDir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestArchiveParallelInvariance is the tentpole property at the unit
// level: the same suite archived at -parallel 1 and -parallel 8 yields
// byte-identical manifests under one RunID.
func TestArchiveParallelInvariance(t *testing.T) {
	tasks := suiteTasks()
	id := Identity{Program: "test", BaseSeed: 7, Quick: true,
		Tasks: []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}}
	cfg := engine.Config{Quick: true, Seed: 7}

	var manifests [][]byte
	for _, workers := range []int{1, 8} {
		r := &engine.Runner{Pool: engine.NewPool(workers)}
		reports := r.RunSuite(context.Background(), tasks, cfg)
		manifests = append(manifests, archiveReports(t, t.TempDir(), id, reports, ""))
	}
	if !bytes.Equal(manifests[0], manifests[1]) {
		t.Fatalf("manifest differs across parallelism:\n-- parallel 1 --\n%s\n-- parallel 8 --\n%s",
			manifests[0], manifests[1])
	}
}

// TestArchiveCrashResumeInvariance proves a crashed-and-resumed
// campaign archives the same manifest bytes as an uninterrupted run —
// including the canonical journal digest, despite the resumed journal
// holding its records in a different on-disk order.
func TestArchiveCrashResumeInvariance(t *testing.T) {
	tasks := suiteTasks()
	taskIDs := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	id := Identity{Program: "test", BaseSeed: 11, Quick: true, Tasks: taskIDs}
	cfg := engine.Config{Quick: true, Seed: 11}
	header := campaign.Header{Program: "test", BaseSeed: 11, Quick: true, Tasks: taskIDs}
	ctx := context.Background()

	runCampaign := func(camp *campaign.Campaign, run []engine.Task) []engine.Report {
		t.Helper()
		reports, err := camp.Run(ctx, &engine.Runner{}, run, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := camp.Journal.Close(); err != nil {
			t.Fatal(err)
		}
		return reports
	}

	// Uninterrupted oracle run.
	baseJournal := filepath.Join(t.TempDir(), "base.journal")
	camp, err := campaign.New(baseJournal, header)
	if err != nil {
		t.Fatal(err)
	}
	baseReports := runCampaign(camp, tasks)
	baseManifest := archiveReports(t, t.TempDir(), id, baseReports, baseJournal)

	// Interrupted run: journal only the first three outcomes, then stop
	// — the moral equivalent of the chaos crash point killing the
	// process after three journaled records.
	crashJournal := filepath.Join(t.TempDir(), "crash.journal")
	camp, err = campaign.New(crashJournal, header)
	if err != nil {
		t.Fatal(err)
	}
	runCampaign(camp, tasks[:3])

	// Resume replays the three journaled tasks and runs the rest.
	camp, err = campaign.Resume(crashJournal, header)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Replayed) != 3 {
		t.Fatalf("resumed campaign replays %d records, want 3", len(camp.Replayed))
	}
	resumeReports := runCampaign(camp, tasks)
	resumeManifest := archiveReports(t, t.TempDir(), id, resumeReports, crashJournal)

	if !bytes.Equal(baseManifest, resumeManifest) {
		t.Fatalf("manifest differs across crash+resume:\n-- base --\n%s\n-- resumed --\n%s",
			baseManifest, resumeManifest)
	}
}

// TestArchiverNilSafe: a nil archiver (no -archive flag) absorbs every
// call, matching the repo's nil-safe sink idiom.
func TestArchiverNilSafe(t *testing.T) {
	var arc *Archiver
	arc.Record(TaskOutcome{ID: "x"})
	arc.AddFile("ledger", "/nonexistent")
	arc.AddBlob("report", []byte("x"))
	arc.SetBreakers(nil)
	arc.SetDegradedProbes(3)
	if got := arc.RunID(); got != "" {
		t.Fatalf("nil archiver RunID = %q, want empty", got)
	}
	dir, err := arc.Write()
	if err != nil || dir != "" {
		t.Fatalf("nil archiver Write = (%q, %v), want no-op", dir, err)
	}
}
