package runstore

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Sample is one run's (or one bench file's) scalar metrics, keyed by
// a dotted metric name. Booleans flatten to 0/1 so a pass flag that
// flips false gates like any other drift.
type Sample map[string]float64

// SampleFromBench flattens a BENCH_*.json document's numeric and
// boolean fields into a sample, prefixed with the file's base name
// ("BENCH_hotpath.speedup_batched_over_baseline").
func SampleFromBench(path string) (Sample, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("runstore: %s: %w", path, err)
	}
	prefix := strings.TrimSuffix(filepath.Base(path), ".json")
	s := Sample{}
	for k, v := range doc {
		switch x := v.(type) {
		case float64:
			s[prefix+"."+k] = x
		case bool:
			if x {
				s[prefix+"."+k] = 1
			} else {
				s[prefix+"."+k] = 0
			}
		}
	}
	return s, nil
}

// SampleFromRun extracts the channel-quality series from an archived
// run: the BER, mutual information, capacity and SNR of its leakage
// report (when one was archived and carries observations). Runs
// without a leakage artifact yield an empty sample — comparable on
// nothing, which Check reports rather than silently passing.
func SampleFromRun(dir string) (Sample, error) {
	if _, _, err := LoadRun(dir); err != nil {
		return nil, err
	}
	s := Sample{}
	data, err := os.ReadFile(filepath.Join(dir, kindPolicies["leakage"].name))
	if err != nil {
		if os.IsNotExist(err) {
			return s, nil
		}
		return nil, err
	}
	var rep struct {
		Bits                  float64 `json:"bits"`
		BitErrorRate          float64 `json:"bit_error_rate"`
		MutualInformationBits float64 `json:"mutual_information_bits"`
		CapacityBits          float64 `json:"capacity_bits"`
		SNR                   float64 `json:"snr"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("runstore: %s leakage report: %w", dir, err)
	}
	if rep.Bits == 0 {
		return s, nil // placeholder report: nothing was observed
	}
	s["leakage.bit_error_rate"] = rep.BitErrorRate
	s["leakage.mutual_information_bits"] = rep.MutualInformationBits
	s["leakage.capacity_bits"] = rep.CapacityBits
	s["leakage.snr"] = rep.SNR
	return s, nil
}

// LoadSamples resolves path into check samples:
//   - a .json file: one bench sample;
//   - a run directory (holds manifest.json): one leakage sample;
//   - an archive root (run subdirectories): one sample per run —
//     the multi-run baseline the median/MAD gate is built for;
//   - any other directory: its *.json files merged as one bench
//     sample (a directory of pinned BENCH baselines).
func LoadSamples(path string) ([]Sample, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	if !fi.IsDir() {
		s, err := SampleFromBench(path)
		if err != nil {
			return nil, err
		}
		return []Sample{s}, nil
	}
	if _, err := os.Stat(filepath.Join(path, ManifestName)); err == nil {
		s, err := SampleFromRun(path)
		if err != nil {
			return nil, err
		}
		return []Sample{s}, nil
	}
	runs, err := List(path)
	if err != nil {
		return nil, err
	}
	if len(runs) > 0 {
		samples := make([]Sample, 0, len(runs))
		for _, m := range runs {
			s, err := SampleFromRun(filepath.Join(path, m.RunID))
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		}
		return samples, nil
	}
	// A flat directory of bench JSONs: one merged sample.
	files, err := filepath.Glob(filepath.Join(path, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	merged := Sample{}
	for _, f := range files {
		s, err := SampleFromBench(f)
		if err != nil {
			return nil, err
		}
		for k, v := range s {
			merged[k] = v
		}
	}
	if len(merged) == 0 {
		return nil, fmt.Errorf("runstore: %s holds no runs or bench JSON", path)
	}
	return []Sample{merged}, nil
}

// CheckOptions tunes the regression gate.
type CheckOptions struct {
	// MADK scales the robust deviation bound: a candidate drifts when
	// it is more than MADK normalized MADs from the baseline median.
	MADK float64
	// Rel is the relative tolerance floor for dimensionless series
	// (ratios, error rates, bits/branch).
	Rel float64
	// RelNoisy is the wider relative floor for wall-clock series
	// (names containing "_ns", "ns_" or "seconds"): raw nanosecond
	// numbers vary machine to machine far more than the ratios the
	// guardrail tests actually gate.
	RelNoisy float64
	// Abs is the absolute tolerance floor, protecting near-zero
	// medians (BER 0.0 with Rel alone would reject any nonzero value).
	Abs float64
}

// DefaultCheckOptions returns the gate's documented defaults.
func DefaultCheckOptions() CheckOptions {
	return CheckOptions{MADK: 5, Rel: 0.25, RelNoisy: 4, Abs: 1e-9}
}

// Finding is one metric's verdict.
type Finding struct {
	Metric string
	// Median and MAD summarize the baseline samples for the metric.
	Median, MAD float64
	// Value is the candidate's reading; Tol the allowed deviation.
	Value, Tol float64
	Drift      bool
}

// noisyMetric reports whether a metric name is a wall-clock series.
func noisyMetric(name string) bool {
	return strings.Contains(name, "_ns") || strings.Contains(name, "ns_") ||
		strings.Contains(name, "seconds")
}

// median returns the middle of xs (mean of middles when even).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Check gates a candidate sample against baseline samples with a
// robust median/MAD rule: for every metric present in both, compute
// the baseline median and MAD, and flag drift when the candidate falls
// outside median ± max(MADK·1.4826·MAD, rel·|median|, Abs). With a
// single baseline sample the MAD term vanishes and the relative floor
// carries the gate. Findings come back sorted by metric name, drifted
// first within nothing — callers sort presentation; the Drift flags
// are the contract. Metrics only one side has are skipped: a baseline
// without the series cannot certify it.
func Check(baseline []Sample, cand Sample, opt CheckOptions) []Finding {
	if opt.MADK == 0 && opt.Rel == 0 && opt.RelNoisy == 0 && opt.Abs == 0 {
		opt = DefaultCheckOptions()
	}
	byMetric := map[string][]float64{}
	for _, s := range baseline {
		for k, v := range s {
			byMetric[k] = append(byMetric[k], v)
		}
	}
	names := make([]string, 0, len(byMetric))
	for k := range byMetric {
		if _, ok := cand[k]; ok {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	findings := make([]Finding, 0, len(names))
	for _, name := range names {
		base := byMetric[name]
		med := median(base)
		devs := make([]float64, len(base))
		for i, v := range base {
			devs[i] = math.Abs(v - med)
		}
		mad := median(devs)
		rel := opt.Rel
		if noisyMetric(name) {
			rel = opt.RelNoisy
		}
		tol := math.Max(opt.MADK*1.4826*mad, math.Max(rel*math.Abs(med), opt.Abs))
		v := cand[name]
		findings = append(findings, Finding{
			Metric: name,
			Median: med,
			MAD:    mad,
			Value:  v,
			Tol:    tol,
			Drift:  math.Abs(v-med) > tol,
		})
	}
	return findings
}

// Drifted counts findings flagged as drift.
func Drifted(findings []Finding) int {
	n := 0
	for _, f := range findings {
		if f.Drift {
			n++
		}
	}
	return n
}
