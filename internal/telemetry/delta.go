package telemetry

// Delta returns the change from prev to s, for attributing a window of
// activity (one scrape interval, one task) out of cumulative snapshots.
// Semantics per instrument kind:
//
//   - Counters: the value difference. Counters whose value did not
//     change (or that vanished) are dropped, so a delta of a quiet
//     window is empty.
//   - Gauges: gauges are levels, not rates, so a delta carries the
//     current value — but only for gauges that changed or appeared
//     since prev.
//   - Histograms: per-bucket, count, sum and overflow differences.
//     Min and Max stay cumulative (the window's extremes are not
//     derivable from two cumulative snapshots) and are therefore
//     only meaningful on the first window. Histograms with no new
//     observations are dropped.
//
// A counter or bucket that moved backwards (a restarted registry) is
// treated as if prev were zero. Both snapshots must come from the same
// registry for bucket layouts to pair up; mismatched layouts fall back
// to treating the histogram as new.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	var d Snapshot

	prevCounters := make(map[string]uint64, len(prev.Counters))
	for _, c := range prev.Counters {
		prevCounters[c.Name] = c.Value
	}
	for _, c := range s.Counters {
		v := sub(c.Value, prevCounters[c.Name])
		if v != 0 {
			d.Counters = append(d.Counters, CounterSnapshot{Name: c.Name, Value: v})
		}
	}

	prevGauges := make(map[string]float64, len(prev.Gauges))
	gaugeSeen := make(map[string]bool, len(prev.Gauges))
	for _, g := range prev.Gauges {
		prevGauges[g.Name] = g.Value
		gaugeSeen[g.Name] = true
	}
	for _, g := range s.Gauges {
		if !gaugeSeen[g.Name] || prevGauges[g.Name] != g.Value {
			d.Gauges = append(d.Gauges, g)
		}
	}

	prevHists := make(map[string]HistogramSnapshot, len(prev.Histograms))
	for _, h := range prev.Histograms {
		prevHists[h.Name] = h
	}
	for _, h := range s.Histograms {
		p, ok := prevHists[h.Name]
		if ok && !sameBounds(h.Buckets, p.Buckets) {
			ok = false // layout changed: treat as new
		}
		dh := h
		if ok {
			dh.Count = sub(h.Count, p.Count)
			dh.Sum = sub(h.Sum, p.Sum)
			dh.Overflow = sub(h.Overflow, p.Overflow)
			dh.Buckets = make([]BucketSnapshot, len(h.Buckets))
			for i, b := range h.Buckets {
				dh.Buckets[i] = BucketSnapshot{LE: b.LE, Count: sub(b.Count, p.Buckets[i].Count)}
			}
		}
		if dh.Count != 0 {
			d.Histograms = append(d.Histograms, dh)
		}
	}
	return d
}

func sub(cur, prev uint64) uint64 {
	if prev > cur {
		return cur
	}
	return cur - prev
}

func sameBounds(a, b []BucketSnapshot) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].LE != b[i].LE {
			return false
		}
	}
	return true
}
