package telemetry

import (
	"math"
	"testing"
)

// histSnap pulls one histogram out of a registry snapshot by name.
func histSnap(t *testing.T, r *Registry, name string) HistogramSnapshot {
	t.Helper()
	for _, hs := range r.Snapshot().Histograms {
		if hs.Name == name {
			return hs
		}
	}
	t.Fatalf("histogram %q not in snapshot", name)
	return HistogramSnapshot{}
}

func TestQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []uint64{10, 100})
	h := histSnap(t, r, "h")
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	r := NewRegistry()
	hist := r.Histogram("h", []uint64{100})
	hist.Observe(40)
	h := histSnap(t, r, "h")
	// One observation: every quantile collapses onto it (clamped into
	// [Min, Max] = [40, 40]).
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 40 {
			t.Errorf("single-value Quantile(%g) = %g, want 40", q, got)
		}
	}

	hist.Observe(80)
	h = histSnap(t, r, "h")
	// Two observations in one bucket: interpolation runs from Min=40
	// toward the bucket bound 100, clamped at Max=80.
	if got := h.Quantile(0.5); got != 70 {
		t.Errorf("Quantile(0.5) = %g, want 70 (40 + 0.5*(100-40))", got)
	}
	if got := h.Quantile(1); got != 80 {
		t.Errorf("Quantile(1) = %g, want clamp at Max=80", got)
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	r := NewRegistry()
	hist := r.Histogram("h", []uint64{10, 20, 30})
	for v := uint64(1); v <= 30; v++ {
		hist.Observe(v)
	}
	h := histSnap(t, r, "h")
	// 30 uniform observations over (0,30]: p50 should land mid-range
	// and p95 near the top; linear interpolation is exact up to bucket
	// granularity here.
	if got := h.Quantile(0.5); math.Abs(got-15) > 1 {
		t.Errorf("uniform p50 = %g, want ~15", got)
	}
	if got := h.Quantile(0.95); math.Abs(got-28.5) > 1 {
		t.Errorf("uniform p95 = %g, want ~28.5", got)
	}
	if lo, hi := h.Quantile(0.25), h.Quantile(0.75); lo >= hi {
		t.Errorf("quantiles not monotone: p25=%g >= p75=%g", lo, hi)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	r := NewRegistry()
	hist := r.Histogram("h", []uint64{10})
	hist.Observe(5)
	hist.Observe(100)
	hist.Observe(200)
	hist.Observe(300)
	h := histSnap(t, r, "h")
	if h.Overflow != 3 {
		t.Fatalf("overflow = %d, want 3", h.Overflow)
	}
	// p75 rank=3 falls inside the overflow span [10, Max=300]:
	// 10 + (2/3)*290 ≈ 203.3.
	if got := h.Quantile(0.75); math.Abs(got-203.33) > 0.1 {
		t.Errorf("overflow p75 = %g, want ~203.33", got)
	}
	// The extremes are clamped to the recorded Min and Max.
	if got := h.Quantile(1); got != 300 {
		t.Errorf("Quantile(1) = %g, want Max=300", got)
	}
	if got := h.Quantile(0); got != 5 {
		t.Errorf("Quantile(0) = %g, want Min=5", got)
	}
}
