// Package telemetry is the observability layer of the simulator: a
// metrics registry (counters, gauges, cycle histograms) with
// deterministic text and JSON export, and a span/event tracer that emits
// Chrome trace-event JSON loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Every entry point is nil-safe: a nil
//     *Registry hands out nil instruments, and every method on a nil
//     instrument, *Tracer or *Set is a no-op. Instrumented code holds
//     plain handles and calls through them unconditionally; with
//     telemetry disabled each call collapses to an inlined nil check,
//     leaving the simulator's hot paths (cpu.Context.Branch and friends)
//     unaffected.
//
//  2. Determinism. Simulated metrics and trace timestamps record cycle
//     counts, never wall-clock time, and exports order every metric by
//     name and every trace event by emission order — so for a fixed seed
//     the exported bytes are identical run to run. (Wall-time gauges
//     exist for the experiment harness, but nothing inside the simulated
//     machine touches a wall clock.)
//
//  3. Race safety. Instruments use atomics throughout and the tracer
//     locks on append, so concurrent contexts may increment the same
//     counter under the race detector.
package telemetry

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Set bundles the two telemetry sinks an instrumented component needs: a
// metrics registry and a tracer. Either (or the whole Set) may be nil;
// all methods degrade to no-ops. A Set also allocates the trace thread
// identifiers (tids) that tie spans to simulated hardware contexts.
type Set struct {
	// Metrics is the metrics registry (nil disables metrics).
	Metrics *Registry
	// Trace is the span/event tracer (nil disables tracing).
	Trace *Tracer

	nextTID atomic.Int64
}

// New bundles a registry and a tracer into a Set. Both arguments may be
// nil.
func New(metrics *Registry, trace *Tracer) *Set {
	return &Set{Metrics: metrics, Trace: trace}
}

// Counter returns the named counter, or nil on a nil Set or registry.
func (s *Set) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.Metrics.Counter(name)
}

// Gauge returns the named gauge, or nil on a nil Set or registry.
func (s *Set) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.Metrics.Gauge(name)
}

// Histogram returns the named histogram, or nil on a nil Set or
// registry. See Registry.Histogram for bucket semantics.
func (s *Set) Histogram(name string, bounds []uint64) *Histogram {
	if s == nil {
		return nil
	}
	return s.Metrics.Histogram(name, bounds)
}

// NewThreadID allocates a trace thread identifier, unique within the
// Set. IDs start at 1; 0 (a nil Set's answer) means "untracked".
func (s *Set) NewThreadID() int {
	if s == nil {
		return 0
	}
	return int(s.nextTID.Add(1))
}

// NameThread records a human-readable name for a thread id in the trace
// (Perfetto shows it as the track title).
func (s *Set) NameThread(tid int, name string) {
	if s == nil {
		return
	}
	s.Trace.ThreadName(tid, name)
}

// Span records a completed span on the tracer (no-op when disabled).
func (s *Set) Span(tid int, cat, name string, start, end uint64, args map[string]any) {
	if s == nil {
		return
	}
	s.Trace.Complete(tid, cat, name, start, end, args)
}

// Instant records an instant event on the tracer (no-op when disabled).
func (s *Set) Instant(tid int, cat, name string, ts uint64, args map[string]any) {
	if s == nil {
		return
	}
	s.Trace.Instant(tid, cat, name, ts, args)
}

// ExpBuckets returns n exponentially spaced histogram bucket upper
// bounds starting at start and growing by factor, each bound strictly
// greater than the previous. It is the standard bucket layout for cycle
// histograms, whose interesting values span orders of magnitude.
func ExpBuckets(start uint64, factor float64, n int) []uint64 {
	if n <= 0 || factor <= 1 {
		panic(fmt.Sprintf("telemetry: ExpBuckets(%d, %g, %d): need n > 0 and factor > 1", start, factor, n))
	}
	bounds := make([]uint64, 0, n)
	v := float64(start)
	var last uint64
	for i := 0; i < n; i++ {
		b := uint64(math.Round(v))
		if b <= last {
			b = last + 1
		}
		bounds = append(bounds, b)
		last = b
		v *= factor
	}
	return bounds
}

// LinearBuckets returns n evenly spaced histogram bucket upper bounds
// start, start+width, ..., start+(n-1)*width. It suits bounded-range
// quantities — permille rates, millibit information measures — where
// exponential spacing would waste resolution.
func LinearBuckets(start, width uint64, n int) []uint64 {
	if n <= 0 || width == 0 {
		panic(fmt.Sprintf("telemetry: LinearBuckets(%d, %d, %d): need n > 0 and width > 0", start, width, n))
	}
	bounds := make([]uint64, n)
	for i := range bounds {
		bounds[i] = start + uint64(i)*width
	}
	return bounds
}
