package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Trace-event phase constants (the Chrome trace-event format's "ph"
// field) used by the tracer.
const (
	// PhaseComplete is a span with a start timestamp and a duration.
	PhaseComplete = "X"
	// PhaseInstant is a point event.
	PhaseInstant = "i"
	// PhaseMetadata carries naming metadata (thread names).
	PhaseMetadata = "M"
)

// tracePID is the constant "process id" under which all simulated
// threads are filed; the simulation is one machine.
const tracePID = 1

// TraceEvent is one Chrome trace-event record. Timestamps and durations
// are simulated cycle counts; the viewer renders them as microseconds
// (1 cycle = 1 µs), which only rescales the axis since everything in a
// trace shares the unit.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   uint64         `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Tracer accumulates trace events in emission order. The nil tracer is
// valid and drops everything. Appends are mutex-serialized, so
// concurrently running contexts may trace; within the simulator's
// strict-handoff scheduling the resulting order is deterministic.
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

func (t *Tracer) append(ev TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Complete records a completed span [start, end] on thread tid. An end
// before start is clamped to a zero duration.
func (t *Tracer) Complete(tid int, cat, name string, start, end uint64, args map[string]any) {
	if t == nil {
		return
	}
	var dur uint64
	if end > start {
		dur = end - start
	}
	t.append(TraceEvent{
		Name: name, Cat: cat, Phase: PhaseComplete,
		TS: start, Dur: dur, PID: tracePID, TID: tid, Args: args,
	})
}

// Instant records a point event at ts on thread tid.
func (t *Tracer) Instant(tid int, cat, name string, ts uint64, args map[string]any) {
	if t == nil {
		return
	}
	t.append(TraceEvent{
		Name: name, Cat: cat, Phase: PhaseInstant,
		TS: ts, PID: tracePID, TID: tid, Scope: "t", Args: args,
	})
}

// ThreadName records naming metadata for a thread id.
func (t *Tracer) ThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.append(TraceEvent{
		Name: "thread_name", Phase: PhaseMetadata,
		PID: tracePID, TID: tid, Args: map[string]any{"name": name},
	})
}

// Len returns the number of recorded events (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in emission order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// traceDoc is the JSON-object form of the Chrome trace format (the
// array form is also legal, but the object form carries metadata).
type traceDoc struct {
	TraceEvents     []TraceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteJSON writes the trace as Chrome trace-event JSON, loadable in
// Perfetto or chrome://tracing. A nil tracer writes an empty trace. The
// output is byte-deterministic for identical event sequences.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := traceDoc{
		TraceEvents:     t.Events(),
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"clock": "simulated cycles (1 cycle rendered as 1us)",
		},
	}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []TraceEvent{}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
