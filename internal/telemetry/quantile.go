package telemetry

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded
// observations by linear interpolation within the histogram's buckets,
// the standard estimator for fixed-bucket histograms (what Prometheus's
// histogram_quantile computes server-side).
//
// The rank q*Count is located in the cumulative bucket counts and the
// value interpolated linearly between the bucket's lower and upper
// bounds. The overflow bucket, which has no upper bound, interpolates
// toward the recorded Max; the estimate is finally clamped into
// [Min, Max], which also makes single-value histograms exact. An empty
// histogram reports 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)

	clamp := func(v float64) float64 {
		if v < float64(h.Min) {
			return float64(h.Min)
		}
		if v > float64(h.Max) {
			return float64(h.Max)
		}
		return v
	}

	var cum uint64
	lower := float64(h.Min) // lower edge of the first bucket
	for _, b := range h.Buckets {
		upper := float64(b.LE)
		if b.Count > 0 && float64(cum+b.Count) >= rank {
			pos := (rank - float64(cum)) / float64(b.Count)
			return clamp(lower + pos*(upper-lower))
		}
		cum += b.Count
		lower = upper
	}
	if h.Overflow > 0 {
		upper := float64(h.Max)
		pos := (rank - float64(cum)) / float64(h.Overflow)
		return clamp(lower + pos*(upper-lower))
	}
	return float64(h.Max)
}
