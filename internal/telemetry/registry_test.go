package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Error("second lookup returned a different counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("Value = %g, want 2.5", got)
	}
}

// TestHistogramBucketBoundaries pins the <=-bound semantics: a value
// equal to a bound lands in that bound's bucket, one above spills into
// the next, and values above the last bound land in overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []uint64{10, 20, 30})
	for _, v := range []uint64{5, 10, 11, 20, 30, 31, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms[0]
	wantBuckets := []uint64{2, 2, 1} // {5,10}, {11,20}, {30}
	for i, want := range wantBuckets {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket le=%d count = %d, want %d", s.Buckets[i].LE, s.Buckets[i].Count, want)
		}
	}
	if s.Overflow != 2 {
		t.Errorf("overflow = %d, want 2", s.Overflow)
	}
	if s.Count != 7 || s.Min != 5 || s.Max != 1000 {
		t.Errorf("count/min/max = %d/%d/%d, want 7/5/1000", s.Count, s.Min, s.Max)
	}
	if s.Sum != 5+10+11+20+30+31+1000 {
		t.Errorf("sum = %d", s.Sum)
	}
}

func TestHistogramEmptyMinIsZero(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []uint64{1})
	s := r.Snapshot().Histograms[0]
	if s.Min != 0 || s.Max != 0 || s.Count != 0 {
		t.Errorf("empty histogram snapshot = %+v", s)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on non-increasing bounds")
		}
	}()
	NewRegistry().Histogram("bad", []uint64{10, 10})
}

// TestNilRegistryNoOp covers the disabled fast path end to end: a nil
// registry hands out nil instruments, and every operation on them (and
// on a nil Set and Tracer) is a safe no-op.
func TestNilRegistryNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatal("nil registry returned a counter")
	}
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := r.Gauge("x")
	g.Set(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	h := r.Histogram("x", []uint64{1, 2})
	h.Observe(7)
	if h.Count() != 0 {
		t.Error("nil histogram counted")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}

	var set *Set
	set.Counter("x").Inc()
	set.Gauge("x").Set(1)
	set.Histogram("x", []uint64{1}).Observe(1)
	set.Span(1, "c", "n", 0, 10, nil)
	set.Instant(1, "c", "n", 0, nil)
	set.NameThread(1, "n")
	if set.NewThreadID() != 0 {
		t.Error("nil Set allocated a thread id")
	}

	var tr *Tracer
	tr.Complete(1, "c", "n", 0, 10, nil)
	tr.Instant(1, "c", "n", 0, nil)
	tr.ThreadName(1, "n")
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Error("nil tracer JSON missing traceEvents")
	}
}

// TestConcurrentCounters exercises the atomics under -race.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("contended")
	h := r.Histogram("contended.hist", ExpBuckets(1, 2, 10))
	g := r.Gauge("contended.gauge")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(uint64(i%512 + 1))
				g.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestSnapshotDeterministicOrder checks name-sorted export regardless of
// registration order, and byte-identical JSON across snapshots.
func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zz", "aa", "mm"} {
		r.Counter(name).Inc()
		r.Gauge("g." + name).Set(1)
		r.Histogram("h."+name, []uint64{1, 2}).Observe(1)
	}
	s := r.Snapshot()
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].Name >= s.Counters[i].Name {
			t.Fatalf("counters not sorted: %v", s.Counters)
		}
	}
	var a, b bytes.Buffer
	if err := s.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("snapshots of identical state differ")
	}
	var decoded Snapshot
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if len(decoded.Counters) != 3 {
		t.Errorf("decoded %d counters, want 3", len(decoded.Counters))
	}
}

func TestWriteTextSections(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.one").Add(7)
	r.Gauge("g.one").Set(1.5)
	r.Histogram("h.one", []uint64{10}).Observe(4)
	out := r.Snapshot().String()
	for _, want := range []string{"counters:", "c.one", "7", "gauges:", "1.5", "histograms:", "count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q in:\n%s", want, out)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(64, 2, 5)
	want := []uint64{64, 128, 256, 512, 1024}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	// Degenerate growth still yields strictly increasing bounds.
	tight := ExpBuckets(1, 1.01, 8)
	for i := 1; i < len(tight); i++ {
		if tight[i] <= tight[i-1] {
			t.Fatalf("not strictly increasing: %v", tight)
		}
	}
}
