package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process-wide metrics registry. Instruments are created
// on first use and live for the registry's lifetime; looking a name up
// again returns the same instrument. A nil *Registry is a valid,
// disabled registry that hands out nil instruments.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket upper bounds (strictly increasing; values above the
// last bound land in an overflow bucket). The bounds of the first
// registration win; later lookups ignore theirs. Returns nil on a nil
// registry. Panics on non-increasing bounds.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %q bounds not strictly increasing", name))
			}
		}
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing uint64 metric. The nil counter
// is valid and ignores writes.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64 metric. The nil gauge is valid and
// ignores writes.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates uint64 observations into fixed buckets, plus
// count, sum, min and max. The nil histogram is valid and ignores
// observations.
type Histogram struct {
	bounds  []uint64 // immutable after creation
	buckets []atomic.Uint64
	over    atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64
	max     atomic.Uint64
}

func newHistogram(bounds []uint64) *Histogram {
	h := &Histogram{
		bounds:  append([]uint64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)),
	}
	h.min.Store(math.MaxUint64)
	return h
}

// Observe records one value: it lands in the first bucket whose upper
// bound is >= v, or in the overflow bucket.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	if i == len(h.bounds) {
		h.over.Add(1)
	} else {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// CounterSnapshot is one counter in a Snapshot.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnapshot is one gauge in a Snapshot.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketSnapshot is one histogram bucket: the count of observations v
// with prevLE < v <= LE.
type BucketSnapshot struct {
	LE    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is one histogram in a Snapshot.
type HistogramSnapshot struct {
	Name     string           `json:"name"`
	Count    uint64           `json:"count"`
	Sum      uint64           `json:"sum"`
	Min      uint64           `json:"min"`
	Max      uint64           `json:"max"`
	Buckets  []BucketSnapshot `json:"buckets"`
	Overflow uint64           `json:"overflow"`
}

// Mean returns the mean observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry, with every section
// sorted by metric name so exports are deterministic.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Filter returns the subset of the snapshot whose metric names start
// with prefix, preserving the name-sorted order. It lets scoped
// exports (the obs server's /leakage endpoint) reuse one registry
// snapshot instead of creating instruments on scrape.
func (s Snapshot) Filter(prefix string) Snapshot {
	var out Snapshot
	for _, c := range s.Counters {
		if strings.HasPrefix(c.Name, prefix) {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range s.Gauges {
		if strings.HasPrefix(g.Name, prefix) {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, h := range s.Histograms {
		if strings.HasPrefix(h.Name, prefix) {
			out.Histograms = append(out.Histograms, h)
		}
	}
	return out
}

// Snapshot captures the registry's current state in deterministic
// (name-sorted) order. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Name:     name,
			Count:    h.count.Load(),
			Sum:      h.sum.Load(),
			Min:      h.min.Load(),
			Max:      h.max.Load(),
			Overflow: h.over.Load(),
		}
		if hs.Count == 0 {
			hs.Min = 0
		}
		for i, b := range h.bounds {
			hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: b, Count: h.buckets[i].Load()})
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON writes the snapshot as indented JSON. The output is
// byte-deterministic for identical registry contents.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteText writes the snapshot as an aligned, human-readable table (the
// format behind `branchscope -v`).
func (s Snapshot) WriteText(w io.Writer) error {
	width := 0
	for _, c := range s.Counters {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, g := range s.Gauges {
		if len(g.Name) > width {
			width = len(g.Name)
		}
	}
	for _, h := range s.Histograms {
		if len(h.Name) > width {
			width = len(h.Name)
		}
	}
	var b strings.Builder
	if len(s.Counters) > 0 {
		fmt.Fprintf(&b, "counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-*s %d\n", width, c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(&b, "gauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-*s %g\n", width, g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(&b, "histograms:\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "  %-*s count=%d mean=%.1f p50=%.0f p95=%.0f p99=%.0f min=%d max=%d\n",
				width, h.Name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Min, h.Max)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String implements fmt.Stringer via WriteText.
func (s Snapshot) String() string {
	var b strings.Builder
	_ = s.WriteText(&b)
	return b.String()
}
