package telemetry

import "testing"

func TestDeltaCounters(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(10)
	r.Counter("quiet").Add(5)
	prev := r.Snapshot()
	r.Counter("a").Add(3)
	r.Counter("new").Add(2)
	d := r.Snapshot().Delta(prev)

	if len(d.Counters) != 2 {
		t.Fatalf("delta counters = %+v, want a=3 and new=2 only", d.Counters)
	}
	if d.Counters[0].Name != "a" || d.Counters[0].Value != 3 {
		t.Errorf("counter a delta = %+v, want 3", d.Counters[0])
	}
	if d.Counters[1].Name != "new" || d.Counters[1].Value != 2 {
		t.Errorf("counter new delta = %+v, want 2", d.Counters[1])
	}
}

func TestDeltaGauges(t *testing.T) {
	r := NewRegistry()
	r.Gauge("same").Set(1.5)
	r.Gauge("moves").Set(2)
	prev := r.Snapshot()
	r.Gauge("moves").Set(7)
	r.Gauge("appears").Set(9)
	d := r.Snapshot().Delta(prev)

	if len(d.Gauges) != 2 {
		t.Fatalf("delta gauges = %+v, want moves and appears only", d.Gauges)
	}
	if d.Gauges[0].Name != "appears" || d.Gauges[0].Value != 9 {
		t.Errorf("gauge appears = %+v", d.Gauges[0])
	}
	if d.Gauges[1].Name != "moves" || d.Gauges[1].Value != 7 {
		t.Errorf("gauge moves = %+v, want current value 7", d.Gauges[1])
	}
}

func TestDeltaHistograms(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	r.Histogram("quiet", []uint64{10}).Observe(1)
	prev := r.Snapshot()
	h.Observe(7)
	h.Observe(1000) // overflow
	d := r.Snapshot().Delta(prev)

	if len(d.Histograms) != 1 {
		t.Fatalf("delta histograms = %+v, want h only", d.Histograms)
	}
	dh := d.Histograms[0]
	if dh.Name != "h" || dh.Count != 2 || dh.Sum != 1007 || dh.Overflow != 1 {
		t.Errorf("h delta = %+v, want count=2 sum=1007 overflow=1", dh)
	}
	if dh.Buckets[0].Count != 1 || dh.Buckets[1].Count != 0 {
		t.Errorf("h bucket deltas = %+v, want [1 0]", dh.Buckets)
	}
}

func TestDeltaOfIdenticalSnapshotsIsEmpty(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(3)
	r.Histogram("h", []uint64{8}).Observe(4)
	s := r.Snapshot()
	d := s.Delta(s)
	if len(d.Counters)+len(d.Gauges)+len(d.Histograms) != 0 {
		t.Errorf("self-delta not empty: %+v", d)
	}
}

func TestDeltaBackwardsCounterTreatedAsNew(t *testing.T) {
	var prev, cur Snapshot
	prev.Counters = []CounterSnapshot{{Name: "c", Value: 100}}
	cur.Counters = []CounterSnapshot{{Name: "c", Value: 40}}
	d := cur.Delta(prev)
	if len(d.Counters) != 1 || d.Counters[0].Value != 40 {
		t.Errorf("backwards counter delta = %+v, want full current value 40", d.Counters)
	}
}
