package promtext

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Lint checks text against the exposition-format grammar this package
// emits, strictly enough to catch real encoder regressions:
//
//   - every sample belongs to a family announced by a preceding
//     "# HELP" and "# TYPE" pair (HELP first, in that order);
//   - family names match the metric-name alphabet and TYPE is one of
//     the format's five types;
//   - sample values parse as floats (or "+Inf"/"-Inf"/"NaN");
//   - histogram bucket series are cumulative (counts nondecreasing in
//     emission order), end in an le="+Inf" bucket, and that bucket
//     equals the family's _count sample, which must be present along
//     with _sum.
//
// It returns the first violation found, with its 1-based line number.
func Lint(r io.Reader) error {
	nameRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRE := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)(?: \d+)?$`)

	type hist struct {
		lastBucket uint64
		infBucket  *uint64
		count      *uint64
		sumSeen    bool
	}
	helpSeen := map[string]bool{}
	typeOf := map[string]string{}
	hists := map[string]*hist{}

	// histFamily resolves a histogram sample name (x_bucket, x_sum,
	// x_count) to its family, preferring the longest declared match so
	// a family literally named "x_count" still resolves.
	histFamily := func(name string) (fam, kind string) {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && typeOf[base] == "histogram" {
				return base, suffix
			}
		}
		return "", ""
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	nonEmpty := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		nonEmpty = true

		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment: legal, ignored
			}
			name := fields[2]
			if !nameRE.MatchString(name) {
				return fmt.Errorf("line %d: invalid metric name %q in %s", lineNo, name, fields[1])
			}
			switch fields[1] {
			case "HELP":
				if helpSeen[name] {
					return fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
				}
				helpSeen[name] = true
			case "TYPE":
				if len(fields) < 4 {
					return fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q for %q", lineNo, typ, name)
				}
				if !helpSeen[name] {
					return fmt.Errorf("line %d: TYPE for %q precedes its HELP", lineNo, name)
				}
				if _, dup := typeOf[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				typeOf[name] = typ
				if typ == "histogram" {
					hists[name] = &hist{}
				}
			}
			continue
		}

		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: unparseable sample line %q", lineNo, line)
		}
		name, labels, value := m[1], m[3], m[4]
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("line %d: sample value %q is not a float: %v", lineNo, value, err)
		}

		fam, kind := name, ""
		if typeOf[name] == "" {
			fam, kind = histFamily(name)
			if fam == "" {
				return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
			}
		}
		if !helpSeen[fam] {
			return fmt.Errorf("line %d: sample %q has no preceding # HELP", lineNo, name)
		}

		h := hists[fam]
		if typeOf[fam] == "histogram" {
			if h == nil {
				return fmt.Errorf("line %d: internal: histogram %q untracked", lineNo, fam)
			}
			switch kind {
			case "_bucket":
				le := labelValue(labels, "le")
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				c := uint64(v)
				if float64(c) != v || v < 0 {
					return fmt.Errorf("line %d: bucket count %q is not a nonnegative integer", lineNo, value)
				}
				if c < h.lastBucket {
					return fmt.Errorf("line %d: bucket counts not cumulative: %d after %d", lineNo, c, h.lastBucket)
				}
				h.lastBucket = c
				if le == "+Inf" {
					cc := c
					h.infBucket = &cc
				}
			case "_count":
				c := uint64(v)
				h.count = &c
			case "_sum":
				h.sumSeen = true
			default:
				return fmt.Errorf("line %d: sample %q is not a _bucket/_sum/_count series of histogram %q", lineNo, name, fam)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !nonEmpty {
		return fmt.Errorf("empty exposition")
	}

	for fam, h := range hists {
		if h.infBucket == nil {
			return fmt.Errorf("histogram %q has no le=\"+Inf\" bucket", fam)
		}
		if h.count == nil || !h.sumSeen {
			return fmt.Errorf("histogram %q is missing _count or _sum", fam)
		}
		if *h.infBucket != *h.count {
			return fmt.Errorf("histogram %q: +Inf bucket %d != _count %d", fam, *h.infBucket, *h.count)
		}
	}
	return nil
}

// labelValue extracts one label's (unescaped) value from a label body
// like `le="64",job="x"`.
func labelValue(body, key string) string {
	for _, kv := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || strings.TrimSpace(k) != key {
			continue
		}
		return strings.Trim(v, `"`)
	}
	return ""
}
