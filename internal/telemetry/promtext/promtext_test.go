package promtext

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"branchscope/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// fixedRegistry builds the registry behind the golden file: one of each
// instrument kind plus the edge cases the encoder must handle (dotted
// names, leading digit, special float values, overflow observations).
func fixedRegistry() *telemetry.Registry {
	r := telemetry.NewRegistry()
	r.Counter("covert.episodes").Add(1234)
	r.Counter("cpu.branches").Add(987654321)
	r.Gauge("experiments.fig2.wall_seconds").Set(1.25)
	r.Gauge("3weird name!").Set(-0.5)
	h := r.Histogram("probe.cycles", telemetry.ExpBuckets(64, 2, 4))
	for _, v := range []uint64{60, 70, 130, 300, 9000} { // 9000 overflows
		h.Observe(v)
	}
	r.Histogram("empty.hist", []uint64{10})
	return r
}

func TestWriteGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, fixedRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from %s (run with -update if intentional):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

func TestWriteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := Write(&a, fixedRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, fixedRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two writes of identical registries differ")
	}
}

func TestWriteOutputLints(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, fixedRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := Lint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("encoder output fails its own lint: %v\n%s", err, buf.Bytes())
	}
	// Spot-check the histogram series: +Inf bucket must include the
	// overflow observation.
	out := buf.String()
	for _, want := range []string{
		`probe_cycles_bucket{le="+Inf"} 5`,
		"probe_cycles_count 5",
		"probe_cycles_sum 9560",
		"covert_episodes_total 1234",
		"# TYPE covert_episodes_total counter",
		"# TYPE probe_cycles histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":   "# HELP x doc\nx 1\n",
		"sample without HELP":   "# TYPE x counter\nx 1\n",
		"bad type":              "# HELP x doc\n# TYPE x zigzag\nx 1\n",
		"non-cumulative bucket": "# HELP h doc\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf != count":          "# HELP h doc\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"missing inf bucket":    "# HELP h doc\n# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 1\nh_count 3\n",
		"non-float value":       "# HELP x doc\n# TYPE x gauge\nx banana\n",
		"empty":                 "",
	}
	for name, text := range cases {
		if err := Lint(strings.NewReader(text)); err == nil {
			t.Errorf("Lint accepted %s:\n%s", name, text)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"covert.episodes": "covert_episodes",
		"already_fine":    "already_fine",
		"3weird name!":    "_3weird_name_",
		"":                "_",
		"a:b":             "a:b",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSanitizeCollisionsGetDistinctFamilies(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Gauge("a.b").Set(1)
	r.Gauge("a_b").Set(2)
	var buf bytes.Buffer
	if err := Write(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a_b 1") || !strings.Contains(out, "a_b_2 2") {
		t.Errorf("collision not disambiguated:\n%s", out)
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Errorf("collision output fails lint: %v", err)
	}
}

// TestConcurrentWriteDuringUpdates exercises Write against a registry
// whose instruments are being hammered concurrently — the /metrics
// scrape path — under the race detector in CI.
func TestConcurrentWriteDuringUpdates(t *testing.T) {
	r := telemetry.NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", telemetry.ExpBuckets(1, 2, 8))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(seed + i%200)
					r.Gauge("g").Set(float64(i))
				}
			}
		}(uint64(w))
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, r.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if err := Lint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("scrape %d fails lint: %v\n%s", i, err, buf.Bytes())
		}
	}
	close(stop)
	wg.Wait()
	if err := Write(io.Discard, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
}
