// Package promtext renders telemetry snapshots in the Prometheus text
// exposition format, version 0.0.4 — the format every Prometheus-
// compatible scraper understands — without importing any client
// library (the module is stdlib-only by design).
//
// Mapping from the registry's instruments:
//
//   - Counter  → one "counter" family named <sanitized>_total.
//   - Gauge    → one "gauge" family.
//   - Histogram → one "histogram" family with cumulative
//     <name>_bucket{le="..."} series, a closing le="+Inf" bucket equal
//     to <name>_count, plus <name>_sum and <name>_count.
//
// Registry names use dots ("covert.episodes"); Prometheus names must
// match [a-zA-Z_:][a-zA-Z0-9_:]*, so every invalid rune becomes "_"
// (with a leading "_" prepended when the name starts with a digit) and
// the original name is preserved in the HELP line. Families are
// emitted in snapshot order (name-sorted per section), so the output
// is byte-deterministic for identical registry contents; a sanitation
// collision deterministically suffixes "_2", "_3", ... in that order.
package promtext

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"branchscope/internal/telemetry"
)

// ContentType is the Content-Type an HTTP handler should declare for
// this exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// SanitizeName maps an arbitrary registry metric name onto the
// Prometheus metric-name alphabet.
func SanitizeName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// escapeHelp escapes a HELP docstring per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects
// (shortest round-trip form; "+Inf"/"-Inf"/"NaN" spellings are what
// strconv emits for the specials).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// namer hands out collision-free sanitized family names.
type namer struct{ used map[string]bool }

func (n *namer) family(raw string) string {
	name := SanitizeName(raw)
	if n.used == nil {
		n.used = make(map[string]bool)
	}
	candidate := name
	for i := 2; n.used[candidate]; i++ {
		candidate = fmt.Sprintf("%s_%d", name, i)
	}
	n.used[candidate] = true
	return candidate
}

// Write renders the snapshot in exposition format v0.0.4. The output
// is byte-deterministic for identical snapshots.
func Write(w io.Writer, s telemetry.Snapshot) error {
	var b strings.Builder
	var names namer

	for _, c := range s.Counters {
		fam := names.family(SanitizeName(c.Name) + "_total")
		fmt.Fprintf(&b, "# HELP %s counter %s\n", fam, escapeHelp(c.Name))
		fmt.Fprintf(&b, "# TYPE %s counter\n", fam)
		fmt.Fprintf(&b, "%s %d\n", fam, c.Value)
	}
	for _, g := range s.Gauges {
		fam := names.family(g.Name)
		fmt.Fprintf(&b, "# HELP %s gauge %s\n", fam, escapeHelp(g.Name))
		fmt.Fprintf(&b, "# TYPE %s gauge\n", fam)
		fmt.Fprintf(&b, "%s %s\n", fam, formatFloat(g.Value))
	}
	for _, h := range s.Histograms {
		fam := names.family(h.Name)
		fmt.Fprintf(&b, "# HELP %s histogram %s\n", fam, escapeHelp(h.Name))
		fmt.Fprintf(&b, "# TYPE %s histogram\n", fam)
		// The +Inf bucket and _count are derived from the bucket series
		// rather than the snapshot's Count: instruments are updated
		// lock-free, so a scrape racing Observe calls can see bucket
		// increments whose count increment it missed. Deriving keeps the
		// exposition grammatical (cumulative buckets, +Inf == _count) on
		// every scrape; on a quiescent registry the two are equal.
		var cum uint64
		for _, bk := range h.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", fam, bk.LE, cum)
		}
		cum += h.Overflow
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", fam, cum)
		fmt.Fprintf(&b, "%s_sum %d\n", fam, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", fam, cum)
	}

	_, err := io.WriteString(w, b.String())
	return err
}
