package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestTraceJSONRoundTrip writes a small trace and decodes it back with
// encoding/json, checking the Chrome trace-event fields (ph/ts/dur) and
// document shape Perfetto expects.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.ThreadName(1, "spy")
	tr.Complete(1, "attack", "episode", 100, 450, nil)
	tr.Complete(1, "attack", "prime", 100, 300, map[string]any{"branches": 96})
	tr.Instant(1, "attack", "decode", 450, map[string]any{"bit": true})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("decoded %d events, want 4", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[0]
	if meta.Ph != PhaseMetadata || meta.Name != "thread_name" || meta.Args["name"] != "spy" {
		t.Errorf("bad thread metadata event: %+v", meta)
	}
	ep := doc.TraceEvents[1]
	if ep.Ph != PhaseComplete || ep.TS != 100 || ep.Dur != 350 || ep.TID != 1 {
		t.Errorf("bad span: %+v", ep)
	}
	prime := doc.TraceEvents[2]
	if prime.Dur != 200 || prime.Args["branches"] != float64(96) {
		t.Errorf("bad prime span: %+v", prime)
	}
	in := doc.TraceEvents[3]
	if in.Ph != PhaseInstant || in.TS != 450 || in.Args["bit"] != true {
		t.Errorf("bad instant: %+v", in)
	}
}

func TestTraceClampsNegativeDuration(t *testing.T) {
	tr := NewTracer()
	tr.Complete(1, "c", "backwards", 50, 40, nil)
	if ev := tr.Events()[0]; ev.Dur != 0 {
		t.Errorf("dur = %d, want clamped 0", ev.Dur)
	}
}

func TestTraceDeterministicBytes(t *testing.T) {
	build := func() []byte {
		tr := NewTracer()
		tr.ThreadName(2, "sender")
		tr.Complete(2, "sched", "quantum", 0, 10, map[string]any{"b": 1, "a": 2})
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Error("identical traces serialized differently")
	}
}

func TestSetThreadIDsAndForwarding(t *testing.T) {
	set := New(NewRegistry(), NewTracer())
	if id1, id2 := set.NewThreadID(), set.NewThreadID(); id1 != 1 || id2 != 2 {
		t.Errorf("thread ids = %d, %d; want 1, 2", id1, id2)
	}
	set.NameThread(1, "spy")
	set.Span(1, "c", "s", 0, 5, nil)
	set.Instant(1, "c", "i", 5, nil)
	if got := set.Trace.Len(); got != 3 {
		t.Errorf("tracer has %d events, want 3", got)
	}
	set.Counter("k").Inc()
	if set.Metrics.Counter("k").Value() != 1 {
		t.Error("Set.Counter did not reach the registry")
	}
}
