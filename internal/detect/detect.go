// Package detect implements the detection countermeasure sketched in
// §10.2: "a class of solutions may focus on detecting the attack
// footprint and invoking mitigations such as freezing or killing the
// attacker process if an ongoing attack is detected."
//
// BranchScope's footprint is distinctive — but not where one would first
// look. The randomization block's mispredictions fade after its first
// execution (the block is static code, so the predictor simply learns
// it); what cannot fade is its *working-set churn*: the block exists to
// cycle branches through the predictor so the victim's branch is always
// freshly evicted, so the attacker sustains a rate of new-branch
// allocations in the seen-branch tracker that no well-behaved program
// approaches (ordinary code has a stable branch working set after
// warmup). The Monitor samples a per-context allocation counter every
// window of retired instructions, scores windows whose allocation
// density crosses a threshold, and raises an alert after enough
// consecutive suspicious windows — at which point the OS would freeze or
// kill the process.
//
// The detector is honest about its limits: any process that sprays dense
// branches over a large code footprint (a JIT warming up, a fuzzer, our
// background noise generator) is indistinguishable from an attacker by
// this footprint — which is precisely why the paper classifies detection
// as a partial defense.
package detect

import (
	"fmt"

	"branchscope/internal/cpu"
)

// Config tunes the monitor.
type Config struct {
	// WindowInstructions is the sampling period (default 256).
	WindowInstructions int
	// AllocDensity is the suspicious new-branch-allocations-per-
	// instruction threshold for one window (default 0.12). A fresh
	// randomization block allocates on most of its branches (~0.6); in
	// steady state re-execution only its self-evicting alias chain
	// keeps allocating (~0.25). Benign code after warmup stays near 0,
	// so the default sits well below the attack and well above benign.
	AllocDensity float64
	// ConsecutiveWindows is how many suspicious windows in a row raise
	// an alert (default 3).
	ConsecutiveWindows int
}

func (c Config) withDefaults() Config {
	if c.WindowInstructions <= 0 {
		c.WindowInstructions = 256
	}
	if c.AllocDensity == 0 {
		c.AllocDensity = 0.12
	}
	if c.ConsecutiveWindows <= 0 {
		c.ConsecutiveWindows = 3
	}
	return c
}

// Monitor watches one hardware context.
type Monitor struct {
	ctx *cpu.Context
	cfg Config

	sinceWindow uint64
	lastAllocs  uint64
	streak      int
	alerts      int
	windows     uint64
	suspicious  uint64
}

// Attach installs a monitor on ctx, composing with any existing retire
// hook (the monitor samples before the previous hook, which may park the
// thread).
func Attach(ctx *cpu.Context, cfg Config) *Monitor {
	m := &Monitor{ctx: ctx, cfg: cfg.withDefaults()}
	m.lastAllocs = ctx.ReadPMC(cpu.BranchAllocations)
	prev := ctx.Hook()
	ctx.SetHook(func(isBranch bool) {
		m.observe()
		if prev != nil {
			prev(isBranch)
		}
	})
	return m
}

func (m *Monitor) observe() {
	m.sinceWindow++
	if m.sinceWindow < uint64(m.cfg.WindowInstructions) {
		return
	}
	m.sinceWindow = 0
	m.windows++
	allocs := m.ctx.ReadPMC(cpu.BranchAllocations)
	density := float64(allocs-m.lastAllocs) / float64(m.cfg.WindowInstructions)
	m.lastAllocs = allocs
	if density >= m.cfg.AllocDensity {
		m.suspicious++
		m.streak++
		if m.streak == m.cfg.ConsecutiveWindows {
			m.alerts++
		}
	} else {
		m.streak = 0
	}
}

// Alerts returns how many times the consecutive-window criterion fired.
func (m *Monitor) Alerts() int { return m.alerts }

// Detected reports whether at least one alert fired — the point at which
// the OS would freeze or kill the process.
func (m *Monitor) Detected() bool { return m.alerts > 0 }

// Stats returns (windows sampled, suspicious windows).
func (m *Monitor) Stats() (windows, suspicious uint64) {
	return m.windows, m.suspicious
}

// String implements fmt.Stringer.
func (m *Monitor) String() string {
	return fmt.Sprintf("detector: %d/%d suspicious windows, %d alert(s)",
		m.suspicious, m.windows, m.alerts)
}
