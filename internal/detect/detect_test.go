package detect

import (
	"math/big"
	"testing"

	"branchscope/internal/core"
	"branchscope/internal/cpu"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

func TestDetectsRandomizationBlocks(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 1)
	spy := sys.NewProcess("spy")
	m := Attach(spy, Config{})
	// The attacker's priming workload: repeated randomization blocks.
	block := core.GenerateBlock(rng.New(2), 0x6100_0000, 2000)
	for i := 0; i < 5; i++ {
		block.Run(spy)
	}
	if !m.Detected() {
		t.Errorf("attack workload not detected: %s", m)
	}
	w, s := m.Stats()
	if s*2 < w {
		t.Errorf("only %d/%d windows suspicious for pure attack code", s, w)
	}
}

func TestDetectsFullAttackSession(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 2)
	secret := rng.New(3).Bits(100)
	victim := sys.Spawn("victim", victims.LoopingSecretArraySender(secret, 0))
	defer victim.Kill()
	spy := sys.NewProcess("spy")
	mon := Attach(spy, Config{})
	sess, err := core.NewSession(spy, rng.New(4), core.AttackConfig{
		Search: core.SearchConfig{TargetAddr: victims.SecretBranchAddr, Focused: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for range secret {
		sess.SpyBit(victim, nil, nil)
	}
	if !mon.Detected() {
		t.Errorf("full attack session not detected: %s", mon)
	}
}

func TestBenignMontgomeryNotFlagged(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 3)
	ctx := sys.NewProcess("service")
	m := Attach(ctx, Config{})
	// A busy cryptographic service: unpredictable branch directions but
	// diluted by real work — the realistic "hard case" benign load.
	e := rng.New(5)
	for i := 0; i < 20; i++ {
		exp := new(big.Int).SetUint64(e.Uint64() | 1<<63)
		mod := new(big.Int).SetUint64(e.Uint64() | 1)
		victims.MontgomeryLadder(ctx, big.NewInt(3), exp, mod)
	}
	if m.Detected() {
		t.Errorf("benign modexp service flagged: %s", m)
	}
}

func TestBenignIDCTNotFlagged(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 4)
	ctx := sys.NewProcess("decoder")
	m := Attach(ctx, Config{})
	var b victims.Block
	b[0][0] = 60
	b[3][4] = -7
	for i := 0; i < 200; i++ {
		victims.IDCT(ctx, &b)
	}
	if m.Detected() {
		t.Errorf("benign decoder flagged: %s", m)
	}
}

func TestDenseRandomBranchesAreIndistinguishable(t *testing.T) {
	// The documented limitation: a process that just executes dense
	// random branches has the attack's footprint.
	sys := sched.NewSystem(uarch.Skylake(), 5)
	ctx := sys.NewProcess("fuzzer")
	m := Attach(ctx, Config{})
	r := rng.New(6)
	for i := 0; i < 5000; i++ {
		ctx.Branch(0x9000+r.Uint64n(1<<16), r.Bool())
	}
	if !m.Detected() {
		t.Error("dense random branches evaded the detector; the footprint metric regressed")
	}
}

func TestMonitorComposesWithScheduler(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 7)
	block := core.GenerateBlock(rng.New(8), 0x6100_0000, 3000)
	th := sys.Spawn("spyproc", func(ctx *cpu.Context) {
		block.Run(ctx)
	})
	mon := Attach(th.Context(), Config{})
	th.Run()
	if !mon.Detected() {
		t.Errorf("stepped attack thread not detected: %s", mon)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.WindowInstructions <= 0 || c.AllocDensity <= 0 || c.ConsecutiveWindows <= 0 {
		t.Errorf("bad defaults: %+v", c)
	}
	if (&Monitor{}).String() == "" {
		t.Error("empty String")
	}
}
