package attacks

import (
	"math/big"
	"testing"

	"branchscope/internal/cpu"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

func TestRecoverMontgomeryExponent(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 21)
	exp := new(big.Int).SetUint64(0xdead_beef_cafe_f00d)
	res, err := RecoverMontgomeryExponent(sys, exp, 1, 5)
	if err != nil {
		t.Fatalf("RecoverMontgomeryExponent: %v", err)
	}
	t.Log(res)
	if res.Bits != exp.BitLen()-1 {
		t.Errorf("attacked %d bits, want %d", res.Bits, exp.BitLen()-1)
	}
	if res.ErrorRate() > 0.02 {
		t.Errorf("bit error rate %.2f%% too high", 100*res.ErrorRate())
	}
	if res.BitErrors == 0 && res.Recovered.Cmp(exp) != 0 {
		t.Error("zero bit errors but wrong exponent reconstruction")
	}
}

func TestRecoverMontgomeryMajorityVoting(t *testing.T) {
	sys := sched.NewSystem(uarch.SandyBridge(), 31)
	exp := new(big.Int).SetUint64(0xabcdef12)
	res, err := RecoverMontgomeryExponent(sys, exp, 3, 7)
	if err != nil {
		t.Fatalf("RecoverMontgomeryExponent: %v", err)
	}
	if res.ErrorRate() > 0.05 {
		t.Errorf("majority-voted error rate %.2f%% too high", 100*res.ErrorRate())
	}
}

func TestRecoverJPEGStructure(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 41)
	r := rng.New(13)
	blocks := make([]victims.Block, 4)
	for i := range blocks {
		blocks[i][0][0] = int32(r.Intn(100))
		// Sparse AC energy so zero and non-zero structures both occur.
		for k := 0; k < 3; k++ {
			blocks[i][r.Intn(8)][r.Intn(8)] = int32(r.Intn(20) - 10)
		}
	}
	res, err := RecoverJPEGStructure(sys, blocks, 3)
	if err != nil {
		t.Fatalf("RecoverJPEGStructure: %v", err)
	}
	t.Log(res)
	if len(res.Recovered) != len(blocks) {
		t.Fatalf("recovered %d blocks, want %d", len(res.Recovered), len(blocks))
	}
	if res.ErrorRate() > 0.05 {
		t.Errorf("branch error rate %.2f%% too high", 100*res.ErrorRate())
	}
	if res.Recovered[0].String() == "" {
		t.Error("empty structure string")
	}
}

func TestDerandomizeASLRNarrowsToIndexClass(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 51)
	const base = 0x0055_4000_0000
	const offset = 0x6d0
	const secretSlide = 37 // page-aligned slide index
	v := victims.NewASLRVictim(base+uint64(secretSlide)<<12, offset)
	th := sys.Spawn("victim", v.Process())
	defer th.Kill()
	// 64 candidate page-aligned slides; the scan must flag exactly the
	// PHT-index collision class of the real one. Address bits 14–15 do
	// not reach the index, so the class has 4 members (slide bits 2–3
	// free).
	var candidates []uint64
	for i := 0; i < 64; i++ {
		candidates = append(candidates, base+uint64(i)<<12+offset)
	}
	res := DerandomizeASLR(sys, th, candidates, 1, 7, 3)
	t.Log(res)
	if len(res.Collisions) != 4 {
		t.Errorf("collision class size %d, want 4: %#x", len(res.Collisions), res.Collisions)
	}
	found := false
	for _, c := range res.Collisions {
		if c == v.SecretAddr {
			found = true
		}
	}
	if !found {
		t.Errorf("victim address %#x not in collision class %#x", v.SecretAddr, res.Collisions)
	}
}

func TestDerandomizeASLRMultiPinpointsSlide(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 53)
	const base = 0x0055_4000_0000
	// Branch offsets of the victim binary, chosen (by the binary, not
	// the attacker) such that carries couple slide bits 14–15 into the
	// visible index: carry thresholds at slide%16 >= 4, 8, 12.
	offsets := []uint64{0x6d0, 0xc9a0, 0x8b30, 0x47c0}
	const secretSlide = 46
	slide := uint64(base + secretSlide<<12)
	th := sys.Spawn("victim", victims.MultiBranchASLRProcess(slide, offsets))
	defer th.Kill()
	var slides []uint64
	for i := 0; i < 64; i++ {
		slides = append(slides, base+uint64(i)<<12)
	}
	res := DerandomizeASLRMulti(sys, th, slides, offsets, 7, 5)
	t.Log(res)
	if res.Found != slide {
		t.Errorf("found %#x, want %#x (survivors: %#x)", res.Found, slide, res.Collisions)
	}
}

func TestBTBSpyRecoversBits(t *testing.T) {
	m := uarch.Skylake()
	sys := sched.NewSystem(m, 61)
	secret := rng.New(17).Bits(300)
	victim := sys.Spawn("victim", victims.LoopingSecretArraySender(secret, 0))
	defer victim.Kill()
	spyCtx := sys.NewProcess("spy")
	spy := NewBTBSpy(spyCtx, victims.SecretBranchAddr, m.BPU.BTBEntries, 800)
	if spy.String() == "" || spy.Threshold() == 0 {
		t.Fatal("spy not calibrated")
	}
	errs := 0
	for _, want := range secret {
		if spy.SpyBit(victim) != want {
			errs++
		}
	}
	rate := float64(errs) / float64(len(secret))
	t.Logf("BTB attack error rate: %.1f%%", 100*rate)
	// The BTB timing channel works but is far noisier than BranchScope:
	// clearly better than guessing, clearly worse than the directional
	// channel.
	if rate > 0.40 {
		t.Errorf("BTB attack error rate %.1f%%: channel not working", 100*rate)
	}
	if rate == 0 {
		t.Error("BTB attack suspiciously perfect; timing noise not modelled?")
	}
}

func TestBTBSpyDefeatedByFlushDefense(t *testing.T) {
	m := uarch.Skylake()
	sys := sched.NewSystem(m, 71)
	secret := rng.New(19).Bits(300)
	victim := sys.Spawn("victim", victims.LoopingSecretArraySender(secret, 0))
	defer victim.Kill()
	spyCtx := sys.NewProcess("spy")
	spy := NewBTBSpy(spyCtx, victims.SecretBranchAddr, m.BPU.BTBEntries, 800)
	spy.FlushDefense = true
	errs := 0
	for _, want := range secret {
		if spy.SpyBit(victim) != want {
			errs++
		}
	}
	rate := float64(errs) / float64(len(secret))
	t.Logf("BTB attack error rate under flush defense: %.1f%%", 100*rate)
	if rate < 0.35 {
		t.Errorf("flush defense did not degrade the BTB attack (%.1f%%)", 100*rate)
	}
}

func TestMontgomeryResultString(t *testing.T) {
	r := MontgomeryResult{Recovered: big.NewInt(5), BitErrors: 1, Bits: 10}
	if r.String() == "" {
		t.Error("empty String")
	}
	if (MontgomeryResult{}).ErrorRate() != 0 {
		t.Error("empty result error rate != 0")
	}
	if (JPEGResult{}).ErrorRate() != 0 {
		t.Error("empty result error rate != 0")
	}
	if (ASLRResult{}).String() == "" {
		t.Error("empty String")
	}
}

var _ = cpu.Instructions // keep the import for helper expansion

func TestPoisonerForcesVictimMispredictions(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 81)
	const addr = 0x0047_1100
	// The victim's branch is heavily biased taken (a loop back-edge);
	// without interference it predicts near-perfectly.
	victim := sys.Spawn("victim", func(ctx *cpu.Context) {
		for {
			ctx.Work(4)
			ctx.Branch(addr, true)
		}
	})
	defer victim.Kill()

	spy := sys.NewProcess("spy")
	p, err := NewPoisoner(spy, rng.New(5), addr)
	if err != nil {
		t.Fatalf("NewPoisoner: %v", err)
	}
	if p.Target() != addr || p.String() == "" {
		t.Error("accessors broken")
	}

	// Baseline: let the victim run; after warmup its branch must be
	// predicted essentially always.
	victim.StepBranches(20)
	base := victim.Context().ReadPMC(cpu.BranchMisses)
	victim.StepBranches(50)
	baseline := victim.Context().ReadPMC(cpu.BranchMisses) - base
	if baseline > 2 {
		t.Fatalf("unpoisoned victim mispredicted %d/50", baseline)
	}

	// Poisoned: prime the entry not-taken before every victim branch.
	before := victim.Context().ReadPMC(cpu.BranchMisses)
	const rounds = 50
	for i := 0; i < rounds; i++ {
		p.Poison(false)
		victim.StepBranches(1)
	}
	missed := victim.Context().ReadPMC(cpu.BranchMisses) - before
	if missed < rounds*9/10 {
		t.Errorf("poisoning forced only %d/%d mispredictions", missed, rounds)
	}

	// And the other direction: poisoning toward the victim's actual
	// bias must leave it predicted.
	before = victim.Context().ReadPMC(cpu.BranchMisses)
	for i := 0; i < rounds; i++ {
		p.Poison(true)
		victim.StepBranches(1)
	}
	missed = victim.Context().ReadPMC(cpu.BranchMisses) - before
	if missed > rounds/10 {
		t.Errorf("aligned poisoning still caused %d/%d mispredictions", missed, rounds)
	}
}

func TestRecoverSlidingWindowSkeleton(t *testing.T) {
	sys := sched.NewSystem(uarch.Skylake(), 91)
	exp := new(big.Int).SetUint64(0xfedc_ba98_7654_3210)
	exp.Lsh(exp, 64)
	exp.Or(exp, new(big.Int).SetUint64(0x0fed_cba9_8765_4321))
	res, err := RecoverSlidingWindowSkeleton(sys, exp, 400, 3, 7)
	if err != nil {
		t.Fatalf("RecoverSlidingWindowSkeleton: %v", err)
	}
	t.Log(res)
	// The skeleton must pin a substantial fraction of the key directly
	// (zeros + window endpoints) ...
	if res.KnownFraction() < 0.35 {
		t.Errorf("only %.1f%% of bits pinned", 100*res.KnownFraction())
	}
	// ... and essentially all pinned bits must be correct.
	if res.KnownBits > 0 && float64(res.WrongBits)/float64(res.KnownBits) > 0.05 {
		t.Errorf("%d/%d pinned bits wrong", res.WrongBits, res.KnownBits)
	}
	// Sanity on the result shape.
	if res.Steps == 0 || res.TotalBits != exp.BitLen() {
		t.Errorf("bad result shape: %+v", res)
	}
	if res.String() == "" {
		t.Error("empty String")
	}
}

func TestSlidingWindowKnownFractionEmpty(t *testing.T) {
	if (SlidingWindowResult{}).KnownFraction() != 0 {
		t.Error("empty KnownFraction != 0")
	}
}

func TestRecoverJPEGStructureMulti(t *testing.T) {
	for _, tc := range []struct {
		model   uarch.Model
		allowST bool
	}{
		{uarch.Haswell(), true},
		{uarch.Skylake(), false},
	} {
		t.Run(tc.model.Name, func(t *testing.T) {
			sys := sched.NewSystem(tc.model, 43)
			r := rng.New(15)
			blocks := make([]victims.Block, 5)
			for i := range blocks {
				blocks[i][0][0] = int32(r.Intn(100))
				for k := 0; k < 3; k++ {
					blocks[i][r.Intn(8)][r.Intn(8)] = int32(r.Intn(20) - 10)
				}
			}
			res, err := RecoverJPEGStructureMulti(sys, blocks, tc.allowST, 5)
			if err != nil {
				t.Fatalf("RecoverJPEGStructureMulti: %v", err)
			}
			t.Log(res)
			if res.ErrorRate() > 0.06 {
				t.Errorf("branch error rate %.2f%% too high", 100*res.ErrorRate())
			}
		})
	}
}
