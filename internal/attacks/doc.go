// Package attacks builds the end-to-end attack applications of §9.2 on
// top of the BranchScope primitive (internal/core):
//
//   - Montgomery-ladder exponent recovery: steal a private exponent one
//     key bit per ladder iteration;
//   - libjpeg IDCT structure recovery: learn which rows/columns of each
//     decoded 8×8 block carry non-zero coefficients, i.e. the relative
//     complexity of the image;
//   - ASLR derandomization: locate a victim branch in the randomized
//     address space by scanning for PHT collisions;
//   - the baseline BTB eviction attack from prior work (§11), used to
//     compare BranchScope against the previously known branch-predictor
//     channel and to show that BTB defenses do not affect BranchScope.
package attacks
