package attacks

import (
	"fmt"

	"branchscope/internal/core"
	"branchscope/internal/cpu"
	"branchscope/internal/stats"
)

// BTB eviction attack — the prior-work baseline (§11, attack style of
// Acıiçmez et al. and Lee et al.): the spy installs its own taken branch
// in the BTB set shared with the victim's branch, lets the victim run,
// and re-times its branch. A taken victim branch inserts its target into
// the BTB, evicting the spy's entry; the spy's next execution then pays
// the front-end redirect cost of a BTB miss. A not-taken victim branch
// leaves the BTB alone (targets are stored only for taken branches).
//
// Comparing this baseline with BranchScope shows (a) the directional
// channel is far cleaner — the BTB signal is a small timing delta buried
// in noise — and (b) BTB defenses (modelled as a BTB flush on every
// context switch) kill the baseline while leaving BranchScope untouched.

// BTBSpy attacks one victim branch address through BTB evictions.
type BTBSpy struct {
	spy       *cpu.Context
	aliasAddr uint64
	threshold uint64
	// FlushDefense simulates the BTB-flush-on-context-switch defense:
	// the kernel flushes the BTB before every spy probe.
	FlushDefense bool
}

// NewBTBSpy prepares a BTB spy against victimAddr: it derives a colliding
// spy-branch address (same BTB set, different tag) and calibrates the
// hit/miss timing threshold on its own branches.
func NewBTBSpy(spy *cpu.Context, victimAddr uint64, btbSets int, calibrationReps int) *BTBSpy {
	if calibrationReps <= 0 {
		calibrationReps = 2000
	}
	b := &BTBSpy{
		spy:       spy,
		aliasAddr: victimAddr + uint64(btbSets),
	}
	// Calibrate: measure the spy branch warm with a BTB hit versus
	// after a self-inflicted eviction (a second alias one set-stride
	// further evicts the first).
	evictor := victimAddr + 2*uint64(btbSets)
	hits := make([]uint64, 0, calibrationReps)
	misses := make([]uint64, 0, calibrationReps)
	for i := 0; i < calibrationReps; i++ {
		b.train()
		t0 := spy.ReadTSC()
		spy.Branch(b.aliasAddr, true)
		hits = append(hits, spy.ReadTSC()-t0)

		b.train()
		spy.Branch(evictor, true) // evict the BTB entry
		spy.Branch(evictor, true) // train evictor's direction for next rounds
		t0 = spy.ReadTSC()
		spy.Branch(b.aliasAddr, true)
		misses = append(misses, spy.ReadTSC()-t0)
	}
	// The medians, not the means: the 18-cycle BTB-miss signal is small
	// enough that spike noise would otherwise push the threshold past
	// the typical miss latency.
	b.threshold = uint64((stats.MedianUint64(hits) + stats.MedianUint64(misses)) / 2)
	return b
}

// Threshold returns the calibrated decision boundary in cycles.
func (b *BTBSpy) Threshold() uint64 { return b.threshold }

// train installs the spy branch: direction strongly taken and BTB entry
// present.
func (b *BTBSpy) train() {
	for i := 0; i < 4; i++ {
		b.spy.Branch(b.aliasAddr, true)
	}
}

// SpyBit runs one BTB attack episode: train, let the victim execute one
// branch, re-time the spy branch. It returns true when it infers the
// victim's branch was taken (spy entry evicted).
func (b *BTBSpy) SpyBit(victim core.Stepper) bool {
	b.train()
	victim.StepBranches(1)
	if b.FlushDefense {
		b.spy.Core().BPU().FlushBTB()
	}
	t0 := b.spy.ReadTSC()
	b.spy.Branch(b.aliasAddr, true)
	lat := b.spy.ReadTSC() - t0
	return lat > b.threshold
}

// String implements fmt.Stringer.
func (b *BTBSpy) String() string {
	return fmt.Sprintf("btb spy: alias %#x, threshold %d cycles, flush-defense=%v",
		b.aliasAddr, b.threshold, b.FlushDefense)
}
