package attacks

import (
	"fmt"

	"branchscope/internal/core"
	"branchscope/internal/cpu"
	"branchscope/internal/rng"
)

// Branch poisoning (§1): beyond reading predictor state, an attacker that
// can create PHT collisions can *write* it — priming a victim branch's
// entry against the victim's actual direction so the victim mispredicts
// on its next execution. This is the directional-predictor analogue of
// the branch-poisoning step of Spectre variant 1/2 exploitation, which
// the paper identifies as sharing BranchScope's collision primitive
// ("the attacker may also change the predictor state, changing its
// behavior in the victim").
//
// A Poisoner holds two pre-searched randomization blocks per target, one
// leaving the entry strongly taken, one strongly not-taken; Poison then
// forces the victim's next prediction in either direction on demand.

// Poisoner forces the predicted direction of a victim branch.
type Poisoner struct {
	spy     *cpu.Context
	target  uint64
	toTaken *core.Block // leaves the entry in ST
	toNot   *core.Block // leaves the entry in SN
}

// NewPoisoner performs the pre-attack searches for both directions.
func NewPoisoner(spy *cpu.Context, r *rng.Source, target uint64) (*Poisoner, error) {
	cfg := core.SearchConfig{TargetAddr: target, Focused: true}
	toNot, _, err := core.FindBlock(spy, r, cfg, core.StateSN, 300)
	if err != nil {
		return nil, fmt.Errorf("attacks: poisoner SN search: %w", err)
	}
	toTaken, _, err := core.FindBlock(spy, r, cfg, core.StateST, 300)
	if err != nil {
		return nil, fmt.Errorf("attacks: poisoner ST search: %w", err)
	}
	return &Poisoner{spy: spy, target: target, toTaken: toTaken, toNot: toNot}, nil
}

// Poison primes the target entry so the victim's next execution is
// predicted in the given direction (and, because the priming evicts the
// victim's seen-branch tag, the 1-level prediction is guaranteed to be
// the one used).
func (p *Poisoner) Poison(predictTaken bool) {
	if predictTaken {
		p.toTaken.Run(p.spy)
	} else {
		p.toNot.Run(p.spy)
	}
}

// Target returns the poisoned branch address.
func (p *Poisoner) Target() uint64 { return p.target }

// String implements fmt.Stringer.
func (p *Poisoner) String() string {
	return fmt.Sprintf("poisoner for %#x (blocks: %d/%d branches)",
		p.target, p.toTaken.Len(), p.toNot.Len())
}
