package attacks

import (
	"fmt"

	"branchscope/internal/core"
	"branchscope/internal/cpu"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
)

// ASLR derandomization (§9.2 "ASLR value recovery"): the attacker knows
// the victim binary — hence the page offsets of its branches — but not
// the randomized load slide. Scanning candidate addresses for PHT
// collisions with a running victim branch reveals the branch's PHT index,
// which pins the slide down to an index-collision class. Address bits
// 14–15 do not reach the PHT index on the modelled parts, so a single
// branch narrows a page-aligned slide to a class of aliases; probing
// additional branches at offsets whose carries couple those bits into the
// visible index range (DerandomizeASLRMulti) disambiguates the rest.

// ASLRResult reports a derandomization scan.
type ASLRResult struct {
	// Found is the detected victim branch address (0 when the scan did
	// not narrow the candidates to exactly one).
	Found uint64
	// Candidates is the number of addresses scanned.
	Candidates int
	// Collisions lists every candidate that showed a collision signal —
	// the PHT-index collision class of the victim branch.
	Collisions []uint64
}

// String implements fmt.Stringer.
func (r ASLRResult) String() string {
	return fmt.Sprintf("aslr scan: found %#x among %d candidates (%d collision signals)",
		r.Found, r.Candidates, len(r.Collisions))
}

// DerandomizeASLR scans candidate branch addresses for PHT collisions
// with a running victim. For each candidate the spy primes the
// candidate's PHT entry, obtains a control probe pattern, re-primes, lets
// the victim execute stepBranches branches, and probes again: a pattern
// change is a collision signal. Each candidate is tested reps times and
// flagged on a majority.
//
// stepBranches is 1 for a single-branch victim; for a victim loop
// executing several known branches per iteration, pass the loop's branch
// count so every victim branch runs once per episode regardless of
// stepping alignment.
func DerandomizeASLR(sys *sched.System, victim core.Stepper, candidates []uint64, stepBranches, reps int, seed uint64) ASLRResult {
	if reps < 1 {
		reps = 5
	}
	if stepBranches < 1 {
		stepBranches = 1
	}
	spy := sys.NewProcess("spy")
	r := rng.New(seed)
	res := ASLRResult{Candidates: len(candidates)}
	for _, cand := range candidates {
		hits := 0
		for rep := 0; rep < reps; rep++ {
			if collisionSignal(spy, r, cand, victim, stepBranches) {
				hits++
			}
		}
		if hits*2 > reps {
			res.Collisions = append(res.Collisions, cand)
		}
	}
	if len(res.Collisions) == 1 {
		res.Found = res.Collisions[0]
	}
	return res
}

// collisionSignal runs one prime–step–probe episode against a candidate
// address without a pre-attack block search. A fresh focused block primes
// the candidate entry to an unknown state; a not-taken probe then both
// verifies the entry is on the not-taken side (pattern HH) and normalizes
// it to exactly SN (from SN or WN, two not-taken executions end in SN).
// Blocks that landed on the taken side are discarded and regenerated.
// With the entry pinned at SN, the standard dictionary applies: if the
// victim's branch collides, its (always-taken) execution moves the entry
// and the taken-probe observes MH; otherwise MM.
func collisionSignal(spy *cpu.Context, r *rng.Source, cand uint64, victim core.Stepper, stepBranches int) bool {
	const maxBlockTries = 8
	for try := 0; try < maxBlockTries; try++ {
		block := core.GenerateFocusedBlock(r, 0x6300_0000, 96, cand)
		block.Run(spy)
		if core.ProbePMC(spy, cand, false) != core.PatternHH {
			continue // entry not on the not-taken side; try another block
		}
		victim.StepBranches(stepBranches)
		return core.DecodeBit(core.ProbePMC(spy, cand, true))
	}
	return false
}

// DerandomizeASLRMulti intersects collision scans over several known
// branch offsets of the victim binary: for each offset it scans
// slide+offset across all candidate slides, then keeps only slides
// flagged for every offset. With offsets chosen so that low-16-bit
// carries couple slide bits 14–15 into the visible index range, the
// intersection identifies the slide uniquely.
//
// victim must execute one branch per offset per loop iteration (in any
// order); slides and offsets define the scanned address grid.
func DerandomizeASLRMulti(sys *sched.System, victim core.Stepper, slides []uint64, offsets []uint64, reps int, seed uint64) ASLRResult {
	if len(offsets) == 0 {
		panic("attacks: DerandomizeASLRMulti needs at least one offset")
	}
	surviving := make(map[uint64]bool, len(slides))
	for _, s := range slides {
		surviving[s] = true
	}
	r := rng.New(seed)
	for _, off := range offsets {
		var cands []uint64
		var slideOf []uint64
		for _, s := range slides {
			if surviving[s] {
				cands = append(cands, s+off)
				slideOf = append(slideOf, s)
			}
		}
		sub := DerandomizeASLR(sys, victim, cands, len(offsets), reps, r.Uint64())
		flagged := make(map[uint64]bool, len(sub.Collisions))
		for _, c := range sub.Collisions {
			flagged[c] = true
		}
		for i, c := range cands {
			if !flagged[c] {
				surviving[slideOf[i]] = false
			}
		}
	}
	res := ASLRResult{Candidates: len(slides)}
	for _, s := range slides {
		if surviving[s] {
			res.Collisions = append(res.Collisions, s)
		}
	}
	if len(res.Collisions) == 1 {
		res.Found = res.Collisions[0]
	}
	return res
}
