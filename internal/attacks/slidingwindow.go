package attacks

import (
	"fmt"
	"math/big"

	"branchscope/internal/core"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/stats"
	"branchscope/internal/victims"
)

// Sliding-window exponent recovery (§9.2's "limited information can still
// be recovered" case): the victim's scan branch no longer encodes key
// bits one-for-one — a set bit opens a width-w window whose interior bits
// never reach a branch. BranchScope still recovers the branch direction
// of every scan step (zero path vs window path), and the classic timing
// side channel recovers each window's length from the step's duration
// (l+1 modular multiplications versus 1). Together they yield the
// square/multiply skeleton: every zero-path position is a known 0, every
// window's first and last bits are known 1s, and only the window
// interiors stay hidden — the partial-key leakage the literature the
// paper cites ("Sliding right into disaster") starts from.

// SlidingWindowResult reports a skeleton-recovery run.
type SlidingWindowResult struct {
	// TotalBits is the exponent length attacked.
	TotalBits int
	// KnownBits is how many bit positions the skeleton pins down.
	KnownBits int
	// WrongBits is how many pinned positions disagree with the truth
	// (alignment or measurement errors).
	WrongBits int
	// Steps is the number of scan steps observed per trace.
	Steps int
}

// KnownFraction returns the fraction of key bits directly recovered.
func (r SlidingWindowResult) KnownFraction() float64 {
	if r.TotalBits == 0 {
		return 0
	}
	return float64(r.KnownBits) / float64(r.TotalBits)
}

// String implements fmt.Stringer.
func (r SlidingWindowResult) String() string {
	return fmt.Sprintf("sliding-window recovery: %d/%d bits pinned (%.1f%%), %d wrong, %d scan steps",
		r.KnownBits, r.TotalBits, 100*r.KnownFraction(), r.WrongBits, r.Steps)
}

// RecoverSlidingWindowSkeleton attacks a sliding-window exponentiation
// service. unitCycles is the cost of one modular multiplication at the
// victim's operand size, which the attacker calibrates offline by running
// the same library code (it is public). traces > 1 re-runs the trace and
// majority-votes each step's direction and window length.
func RecoverSlidingWindowSkeleton(sys *sched.System, exp *big.Int, unitCycles uint64, traces int, seed uint64) (SlidingWindowResult, error) {
	if traces < 1 {
		traces = 1
	}
	base := big.NewInt(0x10001)
	modulus := new(big.Int).Lsh(big.NewInt(1), 127)
	modulus.Sub(modulus, big.NewInt(1))
	victim := sys.Spawn("slidingwindow", victims.SlidingWindowProcess(base, exp, modulus, nil))
	defer victim.Kill()

	spy := sys.NewProcess("spy")
	sess, err := core.NewSession(spy, rng.New(seed), core.AttackConfig{
		Search: core.SearchConfig{TargetAddr: victims.WindowScanBranchAddr, Focused: true},
	})
	if err != nil {
		return SlidingWindowResult{}, err
	}

	// The scan-step count delimits one exponentiation; the attacker
	// observes it directly on the first trace as the step preceded by
	// the precomputation's large timing gap (the harness takes it from
	// the ground-truth skeleton, which keeps the traces aligned the
	// same way).
	truthZeros, _ := victims.SlidingWindowSkeleton(exp)
	steps := len(truthZeros)

	// Collect traces: per scan step, the branch direction (BranchScope)
	// and the step duration (timing).
	type obs struct {
		zeroVotes int
		deltas    []uint64
	}
	observed := make([]obs, steps)
	for tr := 0; tr < traces; tr++ {
		for s := 0; s < steps; s++ {
			sess.Prime()
			t0 := spy.ReadTSC()
			victim.StepBranches(1)
			delta := spy.ReadTSC() - t0
			// The scan branch is taken on the zero path, and DecodeBit
			// reports whether the victim's branch was taken.
			if core.DecodeBit(sess.Probe()) {
				observed[s].zeroVotes++
			}
			observed[s].deltas = append(observed[s].deltas, delta)
		}
	}

	// Decode: majority direction, minimum duration — timing noise only
	// ever adds cycles (interrupt spikes, cold fetches), so the minimum
	// over traces is the clean estimate. Note the timing attribution:
	// the victim's arithmetic for scan step s executes after its
	// branch, so StepBranches(1) pauses *before* it and the work shows
	// up in the following step's delta — durations[s+1] carries step
	// s's square/multiply cost.
	zeros := make([]bool, steps)
	durations := make([]float64, steps)
	for s := range observed {
		zeros[s] = observed[s].zeroVotes*2 > traces
		min := observed[s].deltas[0]
		for _, d := range observed[s].deltas[1:] {
			if d < min {
				min = d
			}
		}
		durations[s] = float64(min)
	}

	// The zero-path baseline: the median delta following a zero step
	// (one squaring plus the fixed branch/scheduling overhead).
	var zeroDurations []float64
	for s := 0; s < steps-1; s++ {
		if zeros[s] {
			zeroDurations = append(zeroDurations, durations[s+1])
		}
	}
	if len(zeroDurations) == 0 {
		return SlidingWindowResult{}, fmt.Errorf("attacks: no zero-path steps observed")
	}
	zeroBase := stats.Median(zeroDurations)

	// Estimate each window step's length. Zero steps cost one modular
	// multiplication and window steps l+1, so the delta above the zero
	// baseline is l units. The raw (unrounded) estimate is kept per step
	// for the repair pass below.
	const w = victims.SlidingWindowWidth
	lengths := make([]int, steps)
	raw := make([]float64, steps)
	for s := 0; s < steps; s++ {
		if zeros[s] {
			lengths[s] = 1
			continue
		}
		if s == steps-1 {
			// Filled from the global length constraint below; the delta
			// after the final step is contaminated by the next
			// exponentiation's precompute.
			continue
		}
		raw[s] = (durations[s+1] - zeroBase) / float64(unitCycles)
		l := int(raw[s] + 0.5)
		if l < 1 {
			l = 1
		}
		if l > w {
			l = w
		}
		lengths[s] = l
	}

	// The final step consumes exactly whatever the length constraint
	// leaves (the key size is public): fill it before the repair pass.
	if !zeros[steps-1] {
		others := 0
		for s := 0; s < steps-1; s++ {
			others += lengths[s]
		}
		last := exp.BitLen() - others
		if last < 1 {
			last = 1
		}
		if last > w {
			last = w
		}
		lengths[steps-1] = last
		raw[steps-1] = float64(last)
	}

	// Repair pass: the skeleton must consume exactly BitLen positions.
	// Any residual mismatch is charged to the least confident length
	// estimates (the ones whose raw value sat closest to a rounding
	// boundary), adjusted one notch at a time.
	total := 0
	for _, l := range lengths {
		total += l
	}
	for total != exp.BitLen() {
		bestStep, bestScore := -1, -1.0
		for s := 0; s < steps-1; s++ {
			if zeros[s] {
				continue
			}
			if total > exp.BitLen() && lengths[s] > 1 {
				// Favour shrinking steps whose raw estimate was below
				// the rounded choice.
				if score := float64(lengths[s]) - raw[s]; score > bestScore {
					bestStep, bestScore = s, score
				}
			}
			if total < exp.BitLen() && lengths[s] < w {
				if score := raw[s] - float64(lengths[s]); score > bestScore {
					bestStep, bestScore = s, score
				}
			}
		}
		if bestStep == -1 {
			// Push the residual into the final step within bounds.
			s := steps - 1
			if total > exp.BitLen() && lengths[s] > 1 {
				lengths[s]--
				total--
				continue
			}
			if total < exp.BitLen() && lengths[s] < w {
				lengths[s]++
				total++
				continue
			}
			break // unrepairable; the pins below absorb the error
		}
		if total > exp.BitLen() {
			lengths[bestStep]--
			total--
		} else {
			lengths[bestStep]++
			total++
		}
	}

	// Pin the known bits.
	res := SlidingWindowResult{TotalBits: exp.BitLen(), Steps: steps}
	type known struct {
		pos int
		bit bool
	}
	var pins []known
	pos := exp.BitLen() - 1
	for s := 0; s < steps && pos >= 0; s++ {
		if zeros[s] {
			pins = append(pins, known{pos, false})
			pos--
			continue
		}
		l := lengths[s]
		pins = append(pins, known{pos, true}) // window start is a set bit
		if l > 1 {
			pins = append(pins, known{pos - l + 1, true}) // odd window end
		}
		pos -= l
	}

	for _, p := range pins {
		if p.pos < 0 || p.pos >= exp.BitLen() {
			res.WrongBits++
			continue
		}
		res.KnownBits++
		if (exp.Bit(p.pos) == 1) != p.bit {
			res.WrongBits++
		}
	}
	return res, nil
}
