package attacks

import (
	"fmt"
	"math/big"

	"branchscope/internal/core"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/victims"
)

// MontgomeryResult reports an exponent-recovery run.
type MontgomeryResult struct {
	// Recovered is the attacker's reconstruction of the exponent.
	Recovered *big.Int
	// BitErrors is the number of ladder bits recovered incorrectly.
	BitErrors int
	// Bits is the number of secret bits attacked.
	Bits int
}

// ErrorRate returns the per-bit recovery error.
func (r MontgomeryResult) ErrorRate() float64 {
	if r.Bits == 0 {
		return 0
	}
	return float64(r.BitErrors) / float64(r.Bits)
}

// String implements fmt.Stringer.
func (r MontgomeryResult) String() string {
	return fmt.Sprintf("montgomery recovery: %d/%d bit errors (%.2f%%)",
		r.BitErrors, r.Bits, 100*r.ErrorRate())
}

// RecoverMontgomeryExponent runs the full §9.2 Montgomery-ladder attack
// on a fresh system: a victim service repeatedly exponentiates with the
// secret exponent, and the spy steals one key bit per ladder iteration
// with a prime–step–probe episode. majority > 1 attacks each bit across
// that many independent traces and votes.
func RecoverMontgomeryExponent(sys *sched.System, exp *big.Int, majority int, seed uint64) (MontgomeryResult, error) {
	if majority < 1 {
		majority = 1
	}
	base := big.NewInt(0x10001)
	modulus := new(big.Int).Lsh(big.NewInt(1), 127)
	modulus.Sub(modulus, big.NewInt(1)) // 2^127-1, prime
	victim := sys.Spawn("montgomery", victims.MontgomeryProcess(base, exp, modulus, nil))
	defer victim.Kill()

	spy := sys.NewProcess("spy")
	sess, err := core.NewSession(spy, rng.New(seed), core.AttackConfig{
		Search: core.SearchConfig{TargetAddr: victims.LadderBranchAddr, Focused: true},
	})
	if err != nil {
		return MontgomeryResult{}, err
	}

	truth := victims.ExponentBits(exp)
	nbits := len(truth)
	votes := make([]int, nbits)
	for trace := 0; trace < majority; trace++ {
		for i := 0; i < nbits; i++ {
			if sess.SpyBit(victim, nil, nil) {
				votes[i]++
			}
		}
	}
	recovered := make([]bool, nbits)
	res := MontgomeryResult{Bits: nbits}
	for i, v := range votes {
		recovered[i] = v*2 > majority
		if recovered[i] != truth[i] {
			res.BitErrors++
		}
	}
	res.Recovered = victims.BitsToExponent(recovered)
	return res, nil
}
