package attacks

import (
	"fmt"

	"branchscope/internal/core"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/victims"
)

// BlockStructure is the zero-structure of one decoded 8×8 block as seen
// through the decoder's skip branches: Columns[c] / Rows[r] report
// whether the corresponding AC coefficients were all zero (the shortcut
// fired). This is the image-complexity information §9.2 describes
// BranchScope recovering from libjpeg.
type BlockStructure struct {
	Columns [8]bool
	Rows    [8]bool
}

// String renders the structure as two bit rows (1 = all-zero/simple).
func (s BlockStructure) String() string {
	f := func(bs [8]bool) string {
		out := make([]byte, 8)
		for i, b := range bs {
			if b {
				out[i] = '1'
			} else {
				out[i] = '0'
			}
		}
		return string(out)
	}
	return fmt.Sprintf("cols=%s rows=%s", f(s.Columns), f(s.Rows))
}

// TrueStructure computes the ground-truth structure of a block.
func TrueStructure(b *victims.Block) BlockStructure {
	var s BlockStructure
	for i := 0; i < 8; i++ {
		s.Columns[i] = b.ColumnACZero(i)
		s.Rows[i] = b.RowACZero(i)
	}
	return s
}

// JPEGResult reports an IDCT structure-recovery run.
type JPEGResult struct {
	Recovered []BlockStructure
	// BranchErrors counts wrongly recovered skip branches out of
	// Branches (16 per block).
	BranchErrors int
	Branches     int
}

// ErrorRate returns the per-branch recovery error.
func (r JPEGResult) ErrorRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.BranchErrors) / float64(r.Branches)
}

// String implements fmt.Stringer.
func (r JPEGResult) String() string {
	return fmt.Sprintf("jpeg recovery: %d blocks, %d/%d branch errors (%.2f%%)",
		len(r.Recovered), r.BranchErrors, r.Branches, 100*r.ErrorRate())
}

// RecoverJPEGStructure spies on a decoder service processing the given
// blocks and recovers each block's zero-structure. One BranchScope
// session is prepared per check-branch address (the pre-attack block
// search is per-target); each decoded block costs 16 prime–step–probe
// episodes.
func RecoverJPEGStructure(sys *sched.System, blocks []victims.Block, seed uint64) (JPEGResult, error) {
	victim := sys.Spawn("libjpeg", victims.IDCTProcess(blocks, nil))
	defer victim.Kill()
	spy := sys.NewProcess("spy")
	r := rng.New(seed)

	newSession := func(target uint64) (*core.Session, error) {
		return core.NewSession(spy, r.Split(), core.AttackConfig{
			Search: core.SearchConfig{TargetAddr: target, Focused: true},
		})
	}
	var colSess, rowSess [8]*core.Session
	for i := 0; i < 8; i++ {
		var err error
		if colSess[i], err = newSession(victims.ColumnCheckAddr(i)); err != nil {
			return JPEGResult{}, err
		}
		if rowSess[i], err = newSession(victims.RowCheckAddr(i)); err != nil {
			return JPEGResult{}, err
		}
	}

	res := JPEGResult{}
	for bi := range blocks {
		var got BlockStructure
		for c := 0; c < 8; c++ {
			got.Columns[c] = colSess[c].SpyBit(victim, nil, nil)
		}
		for row := 0; row < 8; row++ {
			got.Rows[row] = rowSess[row].SpyBit(victim, nil, nil)
		}
		res.Recovered = append(res.Recovered, got)
		scoreBlock(&res, &got, &blocks[bi])
	}
	return res, nil
}

func scoreBlock(res *JPEGResult, got *BlockStructure, b *victims.Block) {
	want := TrueStructure(b)
	for i := 0; i < 8; i++ {
		res.Branches += 2
		if got.Columns[i] != want.Columns[i] {
			res.BranchErrors++
		}
		if got.Rows[i] != want.Rows[i] {
			res.BranchErrors++
		}
	}
}

// RecoverJPEGStructureMulti performs the same recovery with the §6.3
// multi-branch technique: one MultiSession monitors all sixteen check
// branches, so each decoded block costs a *single* prime–step–probe
// episode (one randomization-block execution leaks sixteen directions)
// instead of sixteen. allowST must be false on Skylake-FSM parts (see
// core.MultiConfig).
func RecoverJPEGStructureMulti(sys *sched.System, blocks []victims.Block, allowST bool, seed uint64) (JPEGResult, error) {
	victim := sys.Spawn("libjpeg", victims.IDCTProcess(blocks, nil))
	defer victim.Kill()
	spy := sys.NewProcess("spy")

	targets := make([]uint64, 0, 16)
	for c := 0; c < 8; c++ {
		targets = append(targets, victims.ColumnCheckAddr(c))
	}
	for r := 0; r < 8; r++ {
		targets = append(targets, victims.RowCheckAddr(r))
	}
	ms, err := core.NewMultiSession(spy, rng.New(seed), core.MultiConfig{
		Targets: targets,
		AllowST: allowST,
	})
	if err != nil {
		return JPEGResult{}, err
	}

	res := JPEGResult{}
	for bi := range blocks {
		bits := ms.SpyBits(victim)
		var got BlockStructure
		copy(got.Columns[:], bits[:8])
		copy(got.Rows[:], bits[8:])
		res.Recovered = append(res.Recovered, got)
		scoreBlock(&res, &got, &blocks[bi])
	}
	return res, nil
}
