package fsm

import (
	"testing"
	"testing/quick"
)

func TestTextbookShape(t *testing.T) {
	s := Textbook2Bit()
	if s.States != 4 {
		t.Fatalf("States = %d, want 4", s.States)
	}
	if got := s.Label(0); got != SN {
		t.Errorf("Label(0) = %v, want SN", got)
	}
	if got := s.Label(1); got != WN {
		t.Errorf("Label(1) = %v, want WN", got)
	}
	if got := s.Label(2); got != WT {
		t.Errorf("Label(2) = %v, want WT", got)
	}
	if got := s.Label(3); got != ST {
		t.Errorf("Label(3) = %v, want ST", got)
	}
	for st := uint8(0); st < 4; st++ {
		want := st >= 2
		if got := s.Predict(st); got != want {
			t.Errorf("Predict(%d) = %v, want %v", st, got, want)
		}
	}
}

func TestTextbookTransitions(t *testing.T) {
	s := Textbook2Bit()
	cases := []struct {
		state uint8
		taken bool
		want  uint8
	}{
		{0, false, 0}, {0, true, 1},
		{1, false, 0}, {1, true, 2},
		{2, false, 1}, {2, true, 3},
		{3, false, 2}, {3, true, 3},
	}
	for _, c := range cases {
		if got := s.Next(c.state, c.taken); got != c.want {
			t.Errorf("Next(%d, %v) = %d, want %d", c.state, c.taken, got, c.want)
		}
	}
}

func TestStrongStates(t *testing.T) {
	for _, s := range []*Spec{Textbook2Bit(), SkylakeAsym()} {
		if got := s.Strong(true); s.Label(got) != ST {
			t.Errorf("%s: Strong(true) label = %v, want ST", s.Name, s.Label(got))
		}
		if got := s.Strong(false); s.Label(got) != SN {
			t.Errorf("%s: Strong(false) label = %v, want SN", s.Name, s.Label(got))
		}
	}
}

func TestPrimeSaturatesFromInit(t *testing.T) {
	// Three same-direction executions from the fresh-entry state must
	// reach the strong state of that direction — the paper's prime
	// stage uses exactly three executions (§6.1).
	for _, s := range []*Spec{Textbook2Bit(), SkylakeAsym()} {
		if got := s.Apply(s.Init, true, true, true); got != s.Strong(true) {
			t.Errorf("%s: TTT from init = %d, want strong taken %d", s.Name, got, s.Strong(true))
		}
		if got := s.Apply(s.Init, false, false, false); got != s.Strong(false) {
			t.Errorf("%s: NNN from init = %d, want strong not-taken %d", s.Name, got, s.Strong(false))
		}
	}
}

// probe runs the paper's two-probe protocol from a state: execute the
// branch twice with the given outcome and record hit (correct prediction)
// or miss for each execution.
func probe(s *Spec, state uint8, taken bool) (first, second bool) {
	p1 := s.Predict(state) == taken
	state = s.Next(state, taken)
	p2 := s.Predict(state) == taken
	return p1, p2
}

// obs formats a probe observation the way Table 1 does: H for hit, M for
// misprediction.
func obs(first, second bool) string {
	b := func(hit bool) byte {
		if hit {
			return 'H'
		}
		return 'M'
	}
	return string([]byte{b(first), b(second)})
}

// TestTable1Textbook checks every row of Table 1 against the textbook FSM
// (the Haswell / Sandy Bridge behaviour, including footnote 1's MH).
func TestTable1Textbook(t *testing.T) {
	s := Textbook2Bit()
	rows := []struct {
		prime  bool // direction primed three times
		target bool
		probe  bool
		want   string
	}{
		{true, true, true, "HH"},    // TTT, T, TT
		{true, true, false, "MM"},   // TTT, T, NN
		{true, false, true, "HH"},   // TTT, N, TT
		{true, false, false, "MH"},  // TTT, N, NN (footnote: MH on HSW/SB)
		{false, true, true, "MH"},   // NNN, T, TT
		{false, true, false, "HH"},  // NNN, T, NN
		{false, false, true, "MM"},  // NNN, N, TT
		{false, false, false, "HH"}, // NNN, N, NN
	}
	for _, r := range rows {
		state := s.Apply(s.Init, r.prime, r.prime, r.prime)
		state = s.Next(state, r.target)
		f, sec := probe(s, state, r.probe)
		if got := obs(f, sec); got != r.want {
			t.Errorf("prime=%v target=%v probe=%v: observed %s, want %s",
				r.prime, r.target, r.probe, got, r.want)
		}
	}
}

// TestTable1Skylake checks that the asymmetric counter reproduces the
// Skylake peculiarity: row 4 (TTT, N, NN) observes MM instead of MH, and
// all other rows are unchanged.
func TestTable1Skylake(t *testing.T) {
	s := SkylakeAsym()
	rows := []struct {
		prime  bool
		target bool
		probe  bool
		want   string
	}{
		{true, true, true, "HH"},
		{true, true, false, "MM"},
		{true, false, true, "HH"},
		{true, false, false, "MM"}, // the Skylake footnote
		{false, true, true, "MH"},
		{false, true, false, "HH"},
		{false, false, true, "MM"},
		{false, false, false, "HH"},
	}
	for _, r := range rows {
		state := s.Apply(s.Init, r.prime, r.prime, r.prime)
		state = s.Next(state, r.target)
		f, sec := probe(s, state, r.probe)
		if got := obs(f, sec); got != r.want {
			t.Errorf("prime=%v target=%v probe=%v: observed %s, want %s",
				r.prime, r.target, r.probe, got, r.want)
		}
	}
}

// TestSkylakeSTWTIndistinguishable verifies the paper's claim that ST and
// WT cannot be told apart on Skylake by the two-probe dictionary: both
// produce identical (probeTT, probeNN) observation pairs.
func TestSkylakeSTWTIndistinguishable(t *testing.T) {
	s := SkylakeAsym()
	st := s.Strong(true)
	wt := s.Next(st, false) // one notch down from ST
	if s.Label(wt) != WT {
		t.Fatalf("state below ST has label %v, want WT", s.Label(wt))
	}
	for _, dir := range []bool{true, false} {
		f1, s1 := probe(s, st, dir)
		f2, s2 := probe(s, wt, dir)
		if f1 != f2 || s1 != s2 {
			t.Errorf("probe dir=%v distinguishes ST (%s) from WT (%s)",
				dir, obs(f1, s1), obs(f2, s2))
		}
	}
}

// TestTextbookSTWTDistinguishable verifies the converse on the textbook
// FSM: the NN probe separates ST (MM) from WT (MH).
func TestTextbookSTWTDistinguishable(t *testing.T) {
	s := Textbook2Bit()
	f1, s1 := probe(s, s.Strong(true), false)
	f2, s2 := probe(s, s.Next(s.Strong(true), false), false)
	if obs(f1, s1) == obs(f2, s2) {
		t.Errorf("textbook FSM cannot distinguish ST from WT: both %s", obs(f1, s1))
	}
}

func TestSaturationIsAbsorbing(t *testing.T) {
	for _, s := range []*Spec{Textbook2Bit(), SkylakeAsym()} {
		if got := s.Next(s.Strong(true), true); got != s.Strong(true) {
			t.Errorf("%s: taken from strong-taken moved to %d", s.Name, got)
		}
		if got := s.Next(s.Strong(false), false); got != s.Strong(false) {
			t.Errorf("%s: not-taken from strong-not-taken moved to %d", s.Name, got)
		}
	}
}

// Property: from any state, enough consecutive outcomes in one direction
// saturate the counter, and the prediction then matches that direction.
func TestQuickSaturation(t *testing.T) {
	specs := []*Spec{Textbook2Bit(), SkylakeAsym(), Saturating("wide", 4, 4, 3)}
	f := func(start uint8, dir bool) bool {
		for _, s := range specs {
			st := start % s.States
			for i := uint8(0); i < s.States; i++ {
				st = s.Next(st, dir)
			}
			if st != s.Strong(dir) || s.Predict(st) != dir {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transitions move at most one state per outcome and never leave
// the valid range.
func TestQuickTransitionsBounded(t *testing.T) {
	specs := []*Spec{Textbook2Bit(), SkylakeAsym(), Saturating("wide", 3, 5, 2)}
	f := func(start uint8, dir bool) bool {
		for _, s := range specs {
			st := start % s.States
			nx := s.Next(st, dir)
			if !s.Valid(nx) {
				return false
			}
			d := int(nx) - int(st)
			if d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: monotonicity — a taken outcome never decreases the state and a
// not-taken outcome never increases it.
func TestQuickMonotone(t *testing.T) {
	s := SkylakeAsym()
	f := func(start uint8) bool {
		st := start % s.States
		return s.Next(st, true) >= st && s.Next(st, false) <= st
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSaturatingPanics(t *testing.T) {
	cases := []struct {
		name         string
		nNot, nTaken int
		init         int
	}{
		{"no-not-states", 0, 2, 0},
		{"no-taken-states", 2, 0, 0},
		{"init-negative", 2, 2, -1},
		{"init-too-big", 2, 2, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Saturating(%d,%d,init=%d) did not panic", c.nNot, c.nTaken, c.init)
				}
			}()
			Saturating("bad", c.nNot, c.nTaken, c.init)
		})
	}
}

func TestLabelString(t *testing.T) {
	want := map[Label]string{SN: "SN", WN: "WN", WT: "WT", ST: "ST"}
	for l, w := range want {
		if got := l.String(); got != w {
			t.Errorf("%v.String() = %q, want %q", uint8(l), got, w)
		}
	}
	if got := Label(9).String(); got != "Label(9)" {
		t.Errorf("Label(9).String() = %q", got)
	}
}

func TestLabelsOrder(t *testing.T) {
	ls := Labels()
	if len(ls) != 4 || ls[0] != SN || ls[3] != ST {
		t.Errorf("Labels() = %v", ls)
	}
}

func TestSpecString(t *testing.T) {
	if got := Textbook2Bit().String(); got == "" {
		t.Error("empty String()")
	}
}
