// Package fsm models the per-entry finite state machines of a directional
// branch predictor's pattern history table (PHT).
//
// BranchScope (§6.1) reverse-engineers these FSMs by priming an entry into
// a strong state, executing one target branch, and probing twice. The
// observable behaviour of Intel's Sandy Bridge and Haswell parts matches
// the textbook 2-bit saturating counter (SN, WN, WT, ST). Skylake shows a
// peculiarity — the strongly-taken and weakly-taken states are
// indistinguishable (Table 1, footnote 1: probing "NN" after "TTT, target
// N" observes MM on Skylake where Haswell/Sandy Bridge observe MH). That
// behaviour is reproduced here by an asymmetric counter with one extra
// weak-taken state, so that a single not-taken outcome from the top of the
// taken side still leaves the counter predicting taken twice more.
//
// A Spec is a pure transition table: deterministic, allocation-free to
// evaluate, and safe for concurrent readers. Mutable per-entry state is a
// single uint8 owned by whoever stores it (see internal/pht).
package fsm

import "fmt"

// Label identifies the architecturally observable class of a counter
// state. Internal specs may have more states than labels (Skylake has two
// weak-taken states, both labelled WT).
type Label uint8

// The four textbook 2-bit counter labels.
const (
	SN Label = iota // strongly not-taken
	WN              // weakly not-taken
	WT              // weakly taken
	ST              // strongly taken
)

// String returns the conventional two-letter name of the label.
func (l Label) String() string {
	switch l {
	case SN:
		return "SN"
	case WN:
		return "WN"
	case WT:
		return "WT"
	case ST:
		return "ST"
	}
	return fmt.Sprintf("Label(%d)", uint8(l))
}

// Labels lists the four counter labels in not-taken to taken order.
func Labels() []Label { return []Label{SN, WN, WT, ST} }

// Spec is an immutable description of a saturating-counter FSM. A state is
// a uint8 in [0, States); higher states lean taken.
//
// The hot accessors (Predict, Next, Label) read a compiled dense
// transition plane — flat arrays indexed directly by state — rather
// than walking the declarative taken/next/labels tables those arrays
// are compiled from. The declarative tables are retained as the
// reference implementation (ReferencePredict and friends) so
// differential tests can step both encodings against each other.
type Spec struct {
	// Name identifies the spec in logs and experiment output.
	Name string
	// States is the number of internal states.
	States uint8
	// Init is the state assigned to a freshly allocated PHT entry (the
	// "no previous history" state of §6.1).
	Init uint8
	// taken is the prediction for each state.
	taken []bool
	// next[state][b] is the successor state after an outcome, with b=1
	// for taken.
	next [][2]uint8
	// labels maps internal state to architectural label.
	labels []Label

	// plane is the compiled transition plane: plane[state<<1|b] is the
	// successor of state after outcome b (1 = taken). Length 2*States.
	plane []uint8
	// meta packs the remaining per-state facts: bit 0 is the predicted
	// direction, bits 1-2 the architectural Label.
	meta []uint8
}

// Predict reports the predicted direction in the given state (true =
// taken). It panics if state is out of range, since that indicates
// corruption of a PHT entry.
func (s *Spec) Predict(state uint8) bool {
	return s.meta[state]&1 != 0
}

// Next returns the state after observing an actual branch outcome.
func (s *Spec) Next(state uint8, taken bool) uint8 {
	b := uint(0)
	if taken {
		b = 1
	}
	return s.plane[uint(state)<<1|b]
}

// Plane exposes the compiled transition plane for callers that step
// counters on a hot path without the method-call and bounds-check
// overhead of Next (see internal/pht). The returned slice is shared
// and must be treated as immutable; plane[state<<1|b] is the successor
// of state after outcome b (1 = taken).
func (s *Spec) Plane() []uint8 {
	return s.plane
}

// ReferencePredict is the original slice-walking prediction lookup,
// retained verbatim as the differential-testing oracle for Predict.
func (s *Spec) ReferencePredict(state uint8) bool {
	return s.taken[state]
}

// ReferenceNext is the original slice-walking transition lookup,
// retained verbatim as the differential-testing oracle for Next.
func (s *Spec) ReferenceNext(state uint8, taken bool) uint8 {
	if taken {
		return s.next[state][1]
	}
	return s.next[state][0]
}

// ReferenceLabel is the original label lookup, retained as the
// differential-testing oracle for Label.
func (s *Spec) ReferenceLabel(state uint8) Label {
	return s.labels[state]
}

// Strong returns the saturated state for a direction: the state reached
// after arbitrarily many outcomes in that direction.
func (s *Spec) Strong(taken bool) uint8 {
	if taken {
		return s.States - 1
	}
	return 0
}

// Label classifies an internal state architecturally.
func (s *Spec) Label(state uint8) Label {
	return Label(s.meta[state] >> 1)
}

// Valid reports whether state is a legal state index for this spec.
func (s *Spec) Valid(state uint8) bool {
	return state < s.States
}

// Apply runs a sequence of outcomes from a starting state and returns the
// final state. It is a convenience for tests and experiment code.
func (s *Spec) Apply(state uint8, outcomes ...bool) uint8 {
	for _, t := range outcomes {
		state = s.Next(state, t)
	}
	return state
}

// Textbook2Bit returns the classic 2-bit saturating counter:
//
//	SN <-> WN <-> WT <-> ST
//
// with taken predictions in WT and ST. This matches the observable
// behaviour of the paper's Sandy Bridge and Haswell machines.
func Textbook2Bit() *Spec {
	return saturating("textbook-2bit", 2, 2, 1)
}

// SkylakeAsym returns an asymmetric saturating counter with two not-taken
// states and three taken-predicting states:
//
//	SN <-> WN <-> WT' <-> WT <-> ST
//
// where WT', WT and ST all predict taken. The extra taken-side state makes
// ST and WT observationally indistinguishable under the paper's two-probe
// protocol, reproducing the Skylake peculiarity of Table 1 (probe NN after
// prime TTT + target N observes MM instead of MH).
func SkylakeAsym() *Spec {
	return saturating("skylake-asym", 2, 3, 1)
}

// Saturating builds a generic asymmetric saturating counter with nNot
// not-taken-predicting states and nTaken taken-predicting states, starting
// init states up from the bottom. It panics on degenerate shapes. The
// standard FSMs above are instances of this constructor; it is exported so
// mitigation studies can explore other organizations.
func Saturating(name string, nNot, nTaken int, init int) *Spec {
	return saturating(name, nNot, nTaken, init)
}

func saturating(name string, nNot, nTaken, init int) *Spec {
	if nNot < 1 || nTaken < 1 {
		panic("fsm: saturating counter needs at least one state per side")
	}
	n := nNot + nTaken
	if n > 255 {
		panic("fsm: too many states")
	}
	if init < 0 || init >= n {
		panic("fsm: init state out of range")
	}
	s := &Spec{
		Name:   name,
		States: uint8(n),
		Init:   uint8(init),
		taken:  make([]bool, n),
		next:   make([][2]uint8, n),
		labels: make([]Label, n),
	}
	for i := 0; i < n; i++ {
		s.taken[i] = i >= nNot
		down, up := i-1, i+1
		if down < 0 {
			down = 0
		}
		if up >= n {
			up = n - 1
		}
		s.next[i] = [2]uint8{uint8(down), uint8(up)}
		s.labels[i] = labelFor(i, nNot, n)
	}
	s.compile()
	return s
}

// compile flattens the declarative taken/next/labels tables into the
// dense transition plane the hot accessors read. Labels must fit in
// two bits of meta; the four textbook labels do.
func (s *Spec) compile() {
	n := int(s.States)
	s.plane = make([]uint8, 2*n)
	s.meta = make([]uint8, n)
	for i := 0; i < n; i++ {
		s.plane[i<<1] = s.next[i][0]
		s.plane[i<<1|1] = s.next[i][1]
		m := uint8(s.labels[i]) << 1
		if s.taken[i] {
			m |= 1
		}
		s.meta[i] = m
	}
}

// labelFor assigns architectural labels: the extreme states are strong,
// everything between is weak on its own side.
func labelFor(i, nNot, n int) Label {
	switch {
	case i == 0:
		return SN
	case i == n-1:
		return ST
	case i < nNot:
		return WN
	default:
		return WT
	}
}

// String implements fmt.Stringer for diagnostics.
func (s *Spec) String() string {
	return fmt.Sprintf("fsm.Spec(%s, %d states, init=%d)", s.Name, s.States, s.Init)
}
