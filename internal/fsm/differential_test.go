package fsm

import "testing"

// TestCompiledPlaneMatchesReference pins the compiled transition plane
// against the retained declarative tables for every spec shape the
// models use: Predict, Next, and Label must agree on every state and
// outcome, and long randomized walks must visit identical states.
func TestCompiledPlaneMatchesReference(t *testing.T) {
	specs := []*Spec{
		Textbook2Bit(),
		SkylakeAsym(),
		Saturating("wide-3-3", 3, 3, 2),
		Saturating("deep-4-4", 4, 4, 0),
		Saturating("minimal-1-1", 1, 1, 0),
	}
	for _, s := range specs {
		for state := uint8(0); state < s.States; state++ {
			if got, want := s.Predict(state), s.ReferencePredict(state); got != want {
				t.Errorf("%s: Predict(%d) = %v, reference %v", s.Name, state, got, want)
			}
			if got, want := s.Label(state), s.ReferenceLabel(state); got != want {
				t.Errorf("%s: Label(%d) = %v, reference %v", s.Name, state, got, want)
			}
			for _, taken := range []bool{false, true} {
				if got, want := s.Next(state, taken), s.ReferenceNext(state, taken); got != want {
					t.Errorf("%s: Next(%d, %v) = %d, reference %d", s.Name, state, taken, got, want)
				}
			}
		}
		// Deterministic pseudo-random walk through both encodings.
		fastState, refState := s.Init, s.Init
		x := uint64(0x9e3779b97f4a7c15)
		for i := 0; i < 10000; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			taken := x&1 == 1
			fastState = s.Next(fastState, taken)
			refState = s.ReferenceNext(refState, taken)
			if fastState != refState {
				t.Fatalf("%s: walk diverged at step %d: plane %d, reference %d", s.Name, i, fastState, refState)
			}
		}
	}
}
