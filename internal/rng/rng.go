// Package rng provides deterministic pseudo-random number generation for
// the simulator and the attack code.
//
// Everything in this repository that needs randomness draws it from a
// seeded *Source so experiments are reproducible bit-for-bit. The
// generator is a SplitMix64 core; it is fast, has a 64-bit state, passes
// statistical tests far beyond the needs of this project, and — unlike
// math/rand's global functions — never shares state between components.
package rng

import "math"

// Source is a deterministic pseudo-random number generator.
//
// The zero value is a valid generator seeded with 0; use New to seed it
// explicitly. Source is not safe for concurrent use; give each component
// its own Source (see Split).
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child generator from s. The child's stream
// is decorrelated from the parent's by mixing in a fixed odd constant, so
// components seeded from the same parent do not observe each other's
// sequences.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64()*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (s *Source) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a uniformly distributed uint64 in [0, n). It panics if
// n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	return s.Uint64() % n
}

// Bool returns a uniformly distributed boolean.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Chance returns true with probability p (clamped to [0, 1]).
func (s *Source) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar (Marsaglia) method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Bits returns n uniformly distributed booleans.
func (s *Source) Bits(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = s.Bool()
	}
	return out
}

// Perm returns a uniformly distributed permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
