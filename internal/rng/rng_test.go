package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a2 := New(42)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not reproduce the parent's next outputs.
	p := make(map[uint64]bool)
	pp := New(7)
	pp.Uint64() // advance past the Split draw
	for i := 0; i < 50; i++ {
		p[pp.Uint64()] = true
	}
	hits := 0
	for i := 0; i < 50; i++ {
		if p[child.Uint64()] {
			hits++
		}
	}
	if hits > 1 {
		t.Errorf("child stream overlaps parent: %d hits", hits)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nRange(t *testing.T) {
	r := New(2)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(13); v >= 13 {
			t.Fatalf("Uint64n(13) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestBoolRoughlyBalanced(t *testing.T) {
	r := New(4)
	trues := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < n*45/100 || trues > n*55/100 {
		t.Errorf("Bool bias: %d/%d true", trues, n)
	}
}

func TestChanceEdges(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Chance(0) {
			t.Fatal("Chance(0) fired")
		}
		if !r.Chance(1) {
			t.Fatal("Chance(1) did not fire")
		}
		if r.Chance(-0.5) {
			t.Fatal("negative probability fired")
		}
	}
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Chance(0.25) {
			hits++
		}
	}
	if hits < n*20/100 || hits > n*30/100 {
		t.Errorf("Chance(0.25) fired %d/%d", hits, n)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(6)
	const n = 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestBits(t *testing.T) {
	bits := New(7).Bits(100)
	if len(bits) != 100 {
		t.Fatalf("len = %d", len(bits))
	}
	trues := 0
	for _, b := range bits {
		if b {
			trues++
		}
	}
	if trues == 0 || trues == 100 {
		t.Error("degenerate bit vector")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%64) + 1
		p := New(seed).Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint32NotConstant(t *testing.T) {
	r := New(8)
	a, b := r.Uint32(), r.Uint32()
	if a == b {
		// one collision is possible but a second draw matching too is
		// effectively impossible
		if r.Uint32() == a {
			t.Error("Uint32 returning constants")
		}
	}
}

// Statistical sanity: bytes of the generator output look uniform enough
// for simulation use (chi-squared on 256 buckets, loose bound).
func TestUniformity(t *testing.T) {
	r := New(9)
	var counts [256]int
	const n = 1 << 16
	for i := 0; i < n; i++ {
		counts[r.Uint64()&0xff]++
	}
	expected := float64(n) / 256
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 255 degrees of freedom: mean 255, stddev ~22.6. Allow 6 sigma.
	if chi2 > 255+6*22.6 {
		t.Errorf("chi2 = %.1f, suspiciously non-uniform", chi2)
	}
}
