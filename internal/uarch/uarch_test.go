package uarch

import (
	"testing"

	"branchscope/internal/fsm"
)

func TestAllModelsValid(t *testing.T) {
	for _, m := range All() {
		if err := m.BPU.Validate(); err != nil {
			t.Errorf("%s: invalid BPU config: %v", m.Name, err)
		}
		if m.Name == "" || m.Part == "" {
			t.Errorf("model missing identity: %+v", m)
		}
		if m.NoiseNoisyBranches <= m.NoiseIsolatedBranches {
			t.Errorf("%s: noisy setting (%d) not noisier than isolated (%d)",
				m.Name, m.NoiseNoisyBranches, m.NoiseIsolatedBranches)
		}
		if m.String() == "" {
			t.Error("empty String")
		}
	}
}

func TestSkylakePHTSizeMatchesPaper(t *testing.T) {
	// §6.3 reverse engineers 16384 PHT entries on the Skylake machine.
	if got := Skylake().BPU.PHTSize; got != 16384 {
		t.Errorf("Skylake PHT size = %d, want 16384", got)
	}
}

func TestSandyBridgeSmallerTables(t *testing.T) {
	// §7 attributes Sandy Bridge's higher error rate to smaller tables.
	sb, sl := SandyBridge(), Skylake()
	if sb.BPU.PHTSize >= sl.BPU.PHTSize {
		t.Errorf("SandyBridge PHT (%d) not smaller than Skylake (%d)",
			sb.BPU.PHTSize, sl.BPU.PHTSize)
	}
}

func TestFSMVariants(t *testing.T) {
	// The Skylake quirk: ST/WT indistinguishable needs the asymmetric
	// counter; the others are textbook.
	if Skylake().BPU.FSM.States == Haswell().BPU.FSM.States {
		t.Error("Skylake FSM should differ from Haswell's")
	}
	if got := Haswell().BPU.FSM.States; got != 4 {
		t.Errorf("Haswell FSM states = %d, want 4 (textbook)", got)
	}
	if got := SandyBridge().BPU.FSM.States; got != 4 {
		t.Errorf("SandyBridge FSM states = %d, want 4 (textbook)", got)
	}
	if got := Skylake().BPU.FSM.States; got != 5 {
		t.Errorf("Skylake FSM states = %d, want 5 (asymmetric)", got)
	}
	_ = fsm.Textbook2Bit()
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Skylake", "Haswell", "SandyBridge"} {
		m, err := ByName(name)
		if err != nil || m.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, m.Name, err)
		}
	}
	if _, err := ByName("Pentium4"); err == nil {
		t.Error("ByName accepted unknown model")
	}
}

func TestNewCore(t *testing.T) {
	core := Skylake().NewCore(1)
	if core == nil || core.BPU() == nil {
		t.Fatal("NewCore returned unusable core")
	}
}
