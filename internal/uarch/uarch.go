// Package uarch defines the calibrated microarchitecture models for the
// three CPUs the paper evaluates: Sandy Bridge (i7-2600), Haswell
// (i7-4800MQ) and Skylake (i5-6200U).
//
// The models differ in the dimensions the paper's experiments expose:
//
//   - PHT size: §6.3 reverse engineers 16384 entries on the Skylake
//     machine. §7 attributes Sandy Bridge's higher covert-channel error
//     rate to its smaller predictor tables, so the Sandy Bridge model
//     gets a 4096-entry PHT (and proportionally smaller tag/selector
//     structures).
//   - Counter FSM: Skylake exhibits the ST/WT-indistinguishable
//     peculiarity (Table 1 footnote); Haswell and Sandy Bridge follow the
//     textbook 2-bit counter.
//   - Learning speed: Figure 2 shows Skylake locking onto an irregular
//     pattern slightly faster than the older i7-2600; in the model this
//     emerges from the Sandy Bridge part's smaller tables (more gshare
//     aliasing while learning) and shorter global history register.
//
// Absolute timing parameters are shared (cpu.DefaultTiming); the paper's
// latency figures do not differentiate microarchitectures.
package uarch

import (
	"fmt"

	"branchscope/internal/bpu"
	"branchscope/internal/cpu"
	"branchscope/internal/fsm"
)

// Model is a named, fully parameterized simulated CPU.
type Model struct {
	// Name is the marketing name used in experiment output ("Skylake").
	Name string
	// Part is the concrete part the paper measured ("i5-6200U").
	Part string
	// BPU is the branch prediction unit configuration.
	BPU bpu.Config
	// Timing is the cycle cost model.
	Timing cpu.Timing
	// NoiseIsolatedBranches and NoiseNoisyBranches are the number of
	// background branch instructions executed by other system activity
	// per attack episode, in the paper's "isolated core" and
	// unrestricted settings respectively (§7). Even an isolated core
	// sees some kernel/interrupt activity.
	NoiseIsolatedBranches int
	NoiseNoisyBranches    int
}

// NewCore instantiates a physical core of this model.
func (m Model) NewCore(seed uint64) *cpu.Core {
	return cpu.NewCore(m.BPU, m.Timing, seed)
}

// String implements fmt.Stringer.
func (m Model) String() string {
	return fmt.Sprintf("%s (%s)", m.Name, m.Part)
}

// Skylake returns the i5-6200U model.
func Skylake() Model {
	return Model{
		Name: "Skylake",
		Part: "i5-6200U",
		BPU: bpu.Config{
			FSM:          fsm.SkylakeAsym(),
			PHTSize:      16384,
			SelectorSize: 4096,
			GHRBits:      16,
			TagEntries:   2048,
			BTBEntries:   4096,
			Mode:         bpu.Hybrid,
			SelectorInit: 3,
		},
		Timing:                cpu.DefaultTiming(),
		NoiseIsolatedBranches: 180,
		NoiseNoisyBranches:    300,
	}
}

// Haswell returns the i7-4800MQ model.
func Haswell() Model {
	return Model{
		Name: "Haswell",
		Part: "i7-4800MQ",
		BPU: bpu.Config{
			FSM:          fsm.Textbook2Bit(),
			PHTSize:      16384,
			SelectorSize: 4096,
			GHRBits:      14,
			TagEntries:   2048,
			BTBEntries:   4096,
			Mode:         bpu.Hybrid,
			SelectorInit: 0,
		},
		Timing:                cpu.DefaultTiming(),
		NoiseIsolatedBranches: 90,
		NoiseNoisyBranches:    250,
	}
}

// SandyBridge returns the i7-2600 model.
func SandyBridge() Model {
	return Model{
		Name: "SandyBridge",
		Part: "i7-2600",
		BPU: bpu.Config{
			FSM:          fsm.Textbook2Bit(),
			PHTSize:      4096,
			SelectorSize: 1024,
			GHRBits:      12,
			TagEntries:   1024,
			BTBEntries:   2048,
			Mode:         bpu.Hybrid,
			SelectorInit: 0,
		},
		Timing:                cpu.DefaultTiming(),
		NoiseIsolatedBranches: 160,
		NoiseNoisyBranches:    360,
	}
}

// All returns the three evaluated models in the paper's table order
// (Skylake, Haswell, Sandy Bridge).
func All() []Model {
	return []Model{Skylake(), Haswell(), SandyBridge()}
}

// ByName returns the model with the given name (case-sensitive) or an
// error listing the valid names.
func ByName(name string) (Model, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("uarch: unknown model %q (valid: Skylake, Haswell, SandyBridge)", name)
}
