package branchscope_test

import (
	"fmt"
	"testing"

	"branchscope"
)

// TestAttackMatrix exercises the full attack across the configuration
// space the paper claims it works in: every CPU model, user-space and SGX
// victims, PMC and timing probes. Error-rate ceilings are per-probe
// mechanism (timing probes are single-shot and inherently noisier, per
// Figure 8).
func TestAttackMatrix(t *testing.T) {
	const bits = 250
	for _, model := range branchscope.Models() {
		for _, sgx := range []bool{false, true} {
			for _, timing := range []bool{false, true} {
				name := fmt.Sprintf("%s/sgx=%v/timing=%v", model.Name, sgx, timing)
				t.Run(name, func(t *testing.T) {
					sys := branchscope.NewSystem(model, 0xA11)
					secret := branchscope.NewRand(0x5ec).Bits(bits)
					sender := branchscope.LoopingSecretArraySender(secret, 0)
					var victim branchscope.Stepper
					if sgx {
						e := branchscope.LaunchEnclave(sys, "sender", sender)
						defer e.Destroy()
						victim = e
					} else {
						th := sys.Spawn("sender", sender)
						defer th.Kill()
						victim = th
					}
					spy := sys.NewProcess("spy")
					sess, err := branchscope.NewSession(spy, branchscope.NewRand(2), branchscope.AttackConfig{
						Search: branchscope.SearchConfig{
							TargetAddr: branchscope.SecretBranchAddr,
							Focused:    true,
						},
						UseTiming:             timing,
						TimingCalibrationReps: 600,
					})
					if err != nil {
						t.Fatalf("NewSession: %v", err)
					}
					errs := 0
					for _, want := range secret {
						if sess.SpyBit(victim, nil, nil) != want {
							errs++
						}
					}
					rate := float64(errs) / float64(bits)
					limit := 0.05
					if timing {
						limit = 0.25 // single-shot timing probes (Fig 8 m=1)
					}
					t.Logf("%s: error %.2f%%", name, 100*rate)
					if rate > limit {
						t.Errorf("error rate %.2f%% exceeds %.0f%% ceiling", 100*rate, 100*limit)
					}
				})
			}
		}
	}
}

// TestDeterministicReplay asserts the whole stack is reproducible: two
// complete attack runs from the same seeds leak identical bit streams.
func TestDeterministicReplay(t *testing.T) {
	run := func() []bool {
		sys := branchscope.NewSystem(branchscope.Skylake(), 77)
		secret := branchscope.NewRand(3).Bits(120)
		victim := sys.Spawn("sender", branchscope.LoopingSecretArraySender(secret, 0))
		defer victim.Kill()
		spy := sys.NewProcess("spy")
		sess, err := branchscope.NewSession(spy, branchscope.NewRand(4), branchscope.AttackConfig{
			Search: branchscope.SearchConfig{TargetAddr: branchscope.SecretBranchAddr, Focused: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, len(secret))
		for i := range out {
			out[i] = sess.SpyBit(victim, nil, nil)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at bit %d", i)
		}
	}
}
