//go:build !race

package branchscope_test

const raceEnabled = false
