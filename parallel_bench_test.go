// Parallel-execution guardrail: measures the quick suite sequentially
// and on a GOMAXPROCS-wide pool and records the speedup in
// BENCH_parallel.json. On 4+ core machines the pool must deliver at
// least a 2x speedup; below that the hardware cannot parallelize enough
// for the bar to be meaningful, so only the measurement is recorded.
package branchscope_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"branchscope/internal/engine"
)

func TestParallelSpeedupGuardrail(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guardrail skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("benchmark guardrail skipped under the race detector")
	}

	// The heavier half of the quick suite — enough work per experiment
	// for scheduling overhead to be invisible.
	tasks := tasksByID(t, []string{
		"table2", "table3", "mitigations", "predictors", "fsmwidth",
		"btb", "fig5", "smt", "timingchannel",
	})
	cores := runtime.GOMAXPROCS(0)
	run := func(workers int) time.Duration {
		start := time.Now()
		r := &engine.Runner{Pool: engine.NewPool(workers)}
		reports := r.RunSuite(context.Background(), tasks, engine.Config{Quick: true, Seed: 1})
		if n := engine.Failed(reports); n != 0 {
			t.Fatalf("%d experiments failed", n)
		}
		return time.Since(start)
	}

	seq := run(1)
	par := run(cores)
	speedup := float64(seq) / float64(par)
	pass := speedup >= 2 || cores < 4

	report := struct {
		Cores          int     `json:"cores"`
		Experiments    int     `json:"experiments"`
		SequentialSecs float64 `json:"sequential_seconds"`
		ParallelSecs   float64 `json:"parallel_seconds"`
		Speedup        float64 `json:"speedup"`
		MinSpeedup     float64 `json:"min_speedup_on_4plus_cores"`
		Pass           bool    `json:"pass"`
	}{
		Cores:          cores,
		Experiments:    len(tasks),
		SequentialSecs: seq.Seconds(),
		ParallelSecs:   par.Seconds(),
		Speedup:        speedup,
		MinSpeedup:     2,
		Pass:           pass,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(out, '\n'), 0o644); err != nil {
		t.Fatalf("writing BENCH_parallel.json: %v", err)
	}
	t.Logf("sequential %v, parallel %v on %d core(s): speedup %.2fx", seq, par, cores, speedup)
	if !pass {
		t.Errorf("parallel suite speedup %.2fx on %d cores (want >= 2x on 4+ cores)", speedup, cores)
	}
}
