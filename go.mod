module branchscope

go 1.22
