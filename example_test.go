package branchscope_test

import (
	"fmt"
	"math/big"

	"branchscope"
)

// The canonical BranchScope flow: prime the shared predictor, let the
// victim execute one branch, probe, decode.
func ExampleNewSession() {
	sys := branchscope.NewSystem(branchscope.Skylake(), 42)
	secret := []bool{true, false, true, true, false, false, true, false}
	victim := sys.Spawn("victim", branchscope.SecretArraySender(secret, 0))

	spy := sys.NewProcess("spy")
	sess, err := branchscope.NewSession(spy, branchscope.NewRand(1), branchscope.AttackConfig{
		Search: branchscope.SearchConfig{
			TargetAddr: branchscope.SecretBranchAddr,
			Focused:    true,
		},
	})
	if err != nil {
		fmt.Println("setup failed:", err)
		return
	}
	errs := 0
	for _, want := range secret {
		if sess.SpyBit(victim, nil, nil) != want {
			errs++
		}
	}
	fmt.Printf("leaked %d bits with %d errors\n", len(secret), errs)
	// Output: leaked 8 bits with 0 errors
}

// Stealing a private exponent from a Montgomery-ladder exponentiation
// service (§9.2).
func ExampleRecoverMontgomeryExponent() {
	sys := branchscope.NewSystem(branchscope.Skylake(), 7)
	exp := new(big.Int).SetUint64(0xdead_beef)
	res, err := branchscope.RecoverMontgomeryExponent(sys, exp, 1, 3)
	if err != nil {
		fmt.Println("setup failed:", err)
		return
	}
	fmt.Printf("recovered %#x with %d bit errors\n", res.Recovered, res.BitErrors)
	// Output: recovered 0xdeadbeef with 0 bit errors
}

// Reverse engineering the PHT size from user space (§6.3, Figure 5).
func ExampleDiscoverPHTSize() {
	model := branchscope.SandyBridge()
	sys := branchscope.NewSystem(model, 5)
	spy := sys.NewProcess("spy")
	mapper := branchscope.NewMapper(sys, spy, branchscope.NewRand(11))
	states := mapper.MapStates(0x300000, 4*model.BPU.PHTSize, 3000)
	size, _ := branchscope.DiscoverPHTSize(states, nil, 50, branchscope.NewRand(3))
	fmt.Println("PHT size:", size)
	// Output: PHT size: 4096
}

// The Table 1 decode dictionary in action.
func ExampleDecodeBit() {
	// With the entry primed strongly-not-taken and probed with taken
	// branches, a taken victim branch leaves the MH pattern and a
	// not-taken one leaves MM.
	fmt.Println(branchscope.DecodeBit("MH"), branchscope.DecodeBit("MM"))
	// Output: true false
}
