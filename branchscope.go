// Package branchscope is a full reproduction of "BranchScope: A New
// Side-Channel Attack on Directional Branch Predictor" (Evtyushkin, Riley,
// Abu-Ghazaleh, Ponomarev — ASPLOS 2018) as a Go library.
//
// Because the attack manipulates physical branch-predictor state that the
// Go runtime cannot control cycle-accurately, the library ships its own
// microarchitectural substrate: cycle-level simulated cores with hybrid
// directional predictors calibrated against the paper's three Intel CPUs
// (Sandy Bridge, Haswell, Skylake), an OS/scheduler layer providing the
// threat model's co-residency and victim-slowdown capabilities, and an
// SGX enclave model. The attack itself — randomization blocks, pre-attack
// block search, prime+step+probe episodes, PMC and rdtscp probing, PHT
// reverse engineering — is implemented exactly as the paper describes and
// interacts with the substrate only through the architectural interfaces
// a real attacker has.
//
// # Quick start
//
//	sys := branchscope.NewSystem(branchscope.Skylake(), 42)
//	secret := []bool{true, false, true, true}
//	victim := sys.Spawn("victim", branchscope.SecretArraySender(secret, 0))
//	spy := sys.NewProcess("spy")
//	sess, err := branchscope.NewSession(spy, branchscope.NewRand(1), branchscope.AttackConfig{
//		Search: branchscope.SearchConfig{TargetAddr: branchscope.SecretBranchAddr, Focused: true},
//	})
//	// per secret bit: prime, let the victim run one branch, probe, decode
//	bit := sess.SpyBit(victim, nil, nil)
//
// See the examples directory for runnable programs and the
// internal/experiments package (exposed through Experiments) for the
// harness that regenerates every table and figure in the paper.
package branchscope

import (
	"context"

	"branchscope/internal/attacks"
	"branchscope/internal/core"
	"branchscope/internal/cpu"
	"branchscope/internal/engine"
	"branchscope/internal/experiments"
	"branchscope/internal/rng"
	"branchscope/internal/sched"
	"branchscope/internal/sgx"
	"branchscope/internal/uarch"
	"branchscope/internal/victims"
)

// Simulation substrate.
type (
	// Model is a calibrated microarchitecture (CPU) description.
	Model = uarch.Model
	// System is a simulated machine: one physical core plus scheduling.
	System = sched.System
	// Thread is a steppable simulated process.
	Thread = sched.Thread
	// Context is a hardware thread's architectural interface.
	Context = cpu.Context
	// Enclave is an SGX enclave under an attacker-controlled OS.
	Enclave = sgx.Enclave
	// Rand is the deterministic random source used across the library.
	Rand = rng.Source
)

// The BranchScope attack (the paper's contribution).
type (
	// Session is a ready BranchScope attack instance.
	Session = core.Session
	// AttackConfig parameterizes a Session.
	AttackConfig = core.AttackConfig
	// SearchConfig parameterizes randomization-block generation and the
	// pre-attack search.
	SearchConfig = core.SearchConfig
	// Block is a randomization code block (Listing 1).
	Block = core.Block
	// BlockAnalysis characterizes a candidate block.
	BlockAnalysis = core.BlockAnalysis
	// Pattern is a two-probe observation ("MM", "MH", ...).
	Pattern = core.Pattern
	// StateClass is a decoded PHT entry state.
	StateClass = core.StateClass
	// Stepper is anything the attacker can run branch-by-branch.
	Stepper = core.Stepper
	// Mapper reverse engineers the PHT (§6.3).
	Mapper = core.Mapper
	// TimingDetector classifies branch latencies (§8).
	TimingDetector = core.TimingDetector
	// Experiment is a runnable paper artifact.
	Experiment = experiments.Experiment
)

// The structured run engine behind the experiment suite (see
// internal/engine): typed results, deterministic seed derivation,
// context cancellation and bounded parallel execution.
type (
	// RunConfig is the cross-experiment configuration an Experiment's
	// Run receives: scale selector plus base seed.
	RunConfig = engine.Config
	// RunResult is a typed experiment outcome: paper-layout text via
	// String plus structured rows via Rows.
	RunResult = engine.Result
	// RunPool bounds engine parallelism; attach it to a context with
	// WithPool to let experiments fan out internally.
	RunPool = engine.Pool
)

// NewPool builds a worker pool allowing up to workers concurrently
// running units; WithPool attaches it to a context handed to Run.
var (
	NewPool  = engine.NewPool
	WithPool = engine.WithPool
)

// Decoded PHT state classes.
const (
	StateSN      = core.StateSN
	StateWN      = core.StateWN
	StateWT      = core.StateWT
	StateST      = core.StateST
	StateDirty   = core.StateDirty
	StateUnknown = core.StateUnknown
)

// SecretBranchAddr is the victim branch address of the covert-channel
// benchmark (Listing 2).
const SecretBranchAddr = victims.SecretBranchAddr

// CPU models evaluated by the paper.
var (
	// Skylake returns the i5-6200U model.
	Skylake = uarch.Skylake
	// Haswell returns the i7-4800MQ model.
	Haswell = uarch.Haswell
	// SandyBridge returns the i7-2600 model.
	SandyBridge = uarch.SandyBridge
	// Models returns all three models in paper order.
	Models = uarch.All
	// ModelByName looks a model up by name.
	ModelByName = uarch.ByName
)

// NewSystem boots a simulated machine of the given model; all randomness
// in the machine derives from seed.
func NewSystem(m Model, seed uint64) *System { return sched.NewSystem(m, seed) }

// NewRand returns a deterministic random source.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// NewSession performs the pre-attack work (randomization-block search,
// optional timing calibration) and returns a ready attack session.
func NewSession(spy *Context, r *Rand, cfg AttackConfig) (*Session, error) {
	return core.NewSession(spy, r, cfg)
}

// NewMapper builds the §6.3 PHT reverse-engineering harness. spy must be
// a context of sys's core.
func NewMapper(sys *System, spy *Context, r *Rand) *Mapper {
	return core.NewMapper(sys.Core(), spy, r)
}

// DiscoverPHTSize recovers a table size from a mapped state vector
// (Equation 4).
var DiscoverPHTSize = core.DiscoverPHTSize

// LaunchEnclave starts an SGX enclave running fn under the (attacker
// controlled) OS.
func LaunchEnclave(sys *System, name string, fn func(*Context)) *Enclave {
	return sgx.Launch(sys, name, fn)
}

// Victim programs.
var (
	// SecretArraySender is the Listing 2 covert-channel trojan.
	SecretArraySender = victims.SecretArraySender
	// LoopingSecretArraySender restarts the trojan forever.
	LoopingSecretArraySender = victims.LoopingSecretArraySender
	// MontgomeryLadder is the instrumented modular exponentiation.
	MontgomeryLadder = victims.MontgomeryLadder
	// LadderBranchAddr is its secret-dependent branch address.
	LadderBranchAddr = uint64(victims.LadderBranchAddr)
)

// End-to-end attacks (§9.2).
var (
	// RecoverMontgomeryExponent steals a ladder exponent bit by bit.
	RecoverMontgomeryExponent = attacks.RecoverMontgomeryExponent
	// RecoverJPEGStructure steals IDCT block zero-structures.
	RecoverJPEGStructure = attacks.RecoverJPEGStructure
	// DerandomizeASLR narrows an ASLR slide by collision scanning.
	DerandomizeASLR = attacks.DerandomizeASLR
	// DerandomizeASLRMulti pinpoints a slide with multi-offset scans.
	DerandomizeASLRMulti = attacks.DerandomizeASLRMulti
)

// Experiments returns the harness entries that regenerate every table and
// figure of the paper (see DESIGN.md for the index).
func Experiments() []Experiment { return experiments.All() }

// Validate runs the reproduction scorecard: quick-scale regenerations of
// every artifact checked against the paper's qualitative claims. The
// context carries cancellation and, via WithPool, the parallelism bound.
func Validate(ctx context.Context, seed uint64) (experiments.Scorecard, error) {
	return experiments.Validate(ctx, seed)
}

// RunPoisoningDemo runs the branch-poisoning study (§1 extension):
// rounds of forcing a victim branch to mispredict on demand.
func RunPoisoningDemo(ctx context.Context, rounds int, seed uint64) (experiments.PoisoningResult, error) {
	return experiments.RunPoisoning(ctx, experiments.PoisoningConfig{Rounds: rounds, Seed: seed})
}

// RunDetectionDemo runs the §10.2 footprint-detector study against an
// attacker transmitting bits and a set of benign workloads.
func RunDetectionDemo(ctx context.Context, bits int, seed uint64) (experiments.DetectionResult, error) {
	return experiments.RunDetection(ctx, experiments.DetectionConfig{Bits: bits, Seed: seed})
}

// ExperimentByID returns one experiment by its short name ("table2").
var ExperimentByID = experiments.ByID

// DecodeBit translates a probe observation into the victim branch
// direction under the standard prime-SN / probe-taken configuration.
var DecodeBit = core.DecodeBit

// ProbePMC and ProbeTSC are the raw probe primitives (§7, §8).
var (
	ProbePMC = core.ProbePMC
	ProbeTSC = core.ProbeTSC
)
