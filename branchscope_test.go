package branchscope_test

import (
	"context"
	"math/big"
	"testing"

	"branchscope"
	"branchscope/internal/victims"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow end
// to end through the public surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	sys := branchscope.NewSystem(branchscope.Skylake(), 42)
	secret := branchscope.NewRand(9).Bits(120)
	victim := sys.Spawn("victim", branchscope.LoopingSecretArraySender(secret, 0))
	defer victim.Kill()
	spy := sys.NewProcess("spy")
	sess, err := branchscope.NewSession(spy, branchscope.NewRand(1), branchscope.AttackConfig{
		Search: branchscope.SearchConfig{TargetAddr: branchscope.SecretBranchAddr, Focused: true},
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	errs := 0
	for _, want := range secret {
		if sess.SpyBit(victim, nil, nil) != want {
			errs++
		}
	}
	if errs > len(secret)/20 {
		t.Errorf("quickstart error rate too high: %d/%d", errs, len(secret))
	}
}

func TestPublicAPIModels(t *testing.T) {
	if len(branchscope.Models()) != 3 {
		t.Error("expected three CPU models")
	}
	m, err := branchscope.ModelByName("Haswell")
	if err != nil || m.Name != "Haswell" {
		t.Errorf("ModelByName: %v %v", m.Name, err)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	exps := branchscope.Experiments()
	if len(exps) < 14 {
		t.Errorf("registry has %d experiments, want >= 14", len(exps))
	}
	e, err := branchscope.ExperimentByID("table1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), branchscope.RunConfig{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Error("empty experiment output")
	}
	if len(res.Rows()) == 0 {
		t.Error("experiment returned no structured rows")
	}
}

func TestPublicAPIMontgomery(t *testing.T) {
	sys := branchscope.NewSystem(branchscope.Skylake(), 7)
	exp := new(big.Int).SetUint64(0xfeed_beef)
	res, err := branchscope.RecoverMontgomeryExponent(sys, exp, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate() > 0.05 {
		t.Errorf("error rate %.2f%%", 100*res.ErrorRate())
	}
}

func TestPublicAPIEnclave(t *testing.T) {
	sys := branchscope.NewSystem(branchscope.Skylake(), 3)
	ran := false
	e := branchscope.LaunchEnclave(sys, "t", func(ctx *branchscope.Context) {
		ctx.Branch(0x100, true)
		ran = true
	})
	e.Run()
	if !ran {
		t.Error("enclave did not run")
	}
}

func TestPublicAPIMapper(t *testing.T) {
	sys := branchscope.NewSystem(branchscope.SandyBridge(), 5)
	spy := sys.NewProcess("spy")
	m := branchscope.NewMapper(sys, spy, branchscope.NewRand(11))
	states := m.MapStates(0x300000, 4*4096, 3000)
	size, _ := branchscope.DiscoverPHTSize(states, nil, 50, branchscope.NewRand(12))
	if size != 4096 {
		t.Errorf("discovered %d, want 4096", size)
	}
}

func TestPublicAPIDemosAndHelpers(t *testing.T) {
	if r, err := branchscope.RunPoisoningDemo(context.Background(), 60, 3); err != nil || r.PoisonedMissRate < 0.9 {
		t.Errorf("poisoning demo miss rate %.2f (err %v)", r.PoisonedMissRate, err)
	}
	if r, err := branchscope.RunDetectionDemo(context.Background(), 60, 3); err != nil || len(r.Workloads) != 4 {
		t.Errorf("detection demo rows = %d (err %v)", len(r.Workloads), err)
	}
	if !branchscope.DecodeBit("MH") || branchscope.DecodeBit("MM") {
		t.Error("DecodeBit re-export broken")
	}
	sys := branchscope.NewSystem(branchscope.Haswell(), 1)
	ctx := sys.NewProcess("p")
	if pat := branchscope.ProbePMC(ctx, 0x100, true); len(pat) != 2 {
		t.Errorf("ProbePMC pattern %q", pat)
	}
	if s := branchscope.ProbeTSC(ctx, 0x100, true); s.First == 0 || s.Second == 0 {
		t.Errorf("ProbeTSC sample %+v", s)
	}
	exp := new(big.Int).SetUint64(0xabcd)
	if got := branchscope.MontgomeryLadder(ctx, big.NewInt(2), exp, big.NewInt(101)); got == nil {
		t.Error("MontgomeryLadder nil")
	}
	if branchscope.LadderBranchAddr == 0 || branchscope.SecretBranchAddr == 0 {
		t.Error("zero branch addresses")
	}
}

func TestPublicAPIAttackHelpers(t *testing.T) {
	// JPEG structure recovery through the public surface.
	sys := branchscope.NewSystem(branchscope.Haswell(), 9)
	blocks := makeBlocks(3)
	res, err := branchscope.RecoverJPEGStructure(sys, blocks, 2)
	if err != nil || res.ErrorRate() > 0.05 {
		t.Errorf("RecoverJPEGStructure: %v err=%v", res, err)
	}
	// ASLR scan through the public surface.
	sys2 := branchscope.NewSystem(branchscope.Skylake(), 10)
	offsets := []uint64{0x6d0, 0xc9a0, 0x8b30, 0x47c0}
	const base = 0x0055_4000_0000
	slide := uint64(base + 21<<12)
	victim := sys2.Spawn("v", multiBranchVictim(slide, offsets))
	defer victim.Kill()
	var slides []uint64
	for i := 0; i < 32; i++ {
		slides = append(slides, base+uint64(i)<<12)
	}
	r := branchscope.DerandomizeASLRMulti(sys2, victim, slides, offsets, 7, 4)
	if r.Found != slide {
		t.Errorf("DerandomizeASLRMulti found %#x, want %#x", r.Found, slide)
	}
}

// Local helpers for the public-API tests (the examples build their own
// victims the same way).
func makeBlocks(n int) []victims.Block {
	r := branchscope.NewRand(77)
	blocks := make([]victims.Block, n)
	for i := range blocks {
		blocks[i][0][0] = int32(r.Intn(50))
		blocks[i][int(r.Uint64n(8))][int(r.Uint64n(8))] = int32(r.Intn(9)) - 4
	}
	return blocks
}

func multiBranchVictim(slide uint64, offsets []uint64) func(*branchscope.Context) {
	return victims.MultiBranchASLRProcess(slide, offsets)
}
