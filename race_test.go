//go:build race

package branchscope_test

// raceEnabled reports whether the race detector is compiled in; the
// telemetry overhead guardrail skips itself under race, where timing
// ratios are meaningless.
const raceEnabled = true
